// Package cr implements the baseline the paper compares against: MVAPICH2's
// coordinated Checkpoint/Restart framework. Every process of the job is
// checkpointed with BLCR to stable storage — the node-local ext3 file system
// or PVFS — and a restart reloads every image.
//
// The cycle mirrors the paper's phase decomposition for Fig. 7:
//
//	Job Stall   identical to migration Phase 1 (drain + teardown)
//	Checkpoint  every rank dumps its image to ext3 or PVFS (and syncs:
//	            a checkpoint that only exists in a failing node's page
//	            cache is worthless)
//	Resume      identical to migration Phase 4
//	Restart     optional for CR (only after a failure), measured from cold
//	            caches: every rank reloads and rebuilds its image
package cr

import (
	"errors"
	"fmt"

	"ibmig/internal/blcr"
	"ibmig/internal/cluster"
	"ibmig/internal/metrics"
	"ibmig/internal/mpi"
	"ibmig/internal/obs"
	"ibmig/internal/payload"
	"ibmig/internal/proc"
	"ibmig/internal/sim"
)

// Target selects the checkpoint storage.
type Target int

// Storage targets.
const (
	// Ext3 writes each rank's image to its node's local file system.
	Ext3 Target = iota
	// PVFS writes all images to the shared parallel file system.
	PVFS
)

func (t Target) String() string {
	if t == PVFS {
		return "PVFS"
	}
	return "ext3"
}

// Runner executes Checkpoint/Restart cycles against a running job.
type Runner struct {
	C      *cluster.Cluster
	W      *mpi.World
	Target Target
	// Hash enables end-to-end image verification.
	Hash bool
	// Aggregate enables node-level write aggregation (the authors' companion
	// technique, cited as [15][16] in the paper): one dedicated writer per
	// node funnels all local checkpoint streams to storage sequentially, so
	// the device sees a single stream instead of one per process. Trades
	// serialized dump CPU for the elimination of inter-stream seeking.
	Aggregate bool

	// Verified reports whether the last restart reproduced every image
	// bit-identically (meaningful with Hash).
	Verified bool

	sums  map[int]uint64
	files map[int]string
	nodes map[int]string // node each rank occupied at checkpoint time
}

// NewRunner creates a CR runner for the job.
func NewRunner(c *cluster.Cluster, w *mpi.World, target Target, hash bool) *Runner {
	if target == PVFS && c.PVFS == nil {
		panic("cr: cluster has no PVFS")
	}
	return &Runner{C: c, W: w, Target: target, Hash: hash}
}

// ckptName is the checkpoint file for one rank.
func ckptName(rank int) string { return fmt.Sprintf("ckpt.%d", rank) }

// Checkpoint performs one coordinated checkpoint of the whole job, returning
// a report with the Job Stall, Checkpoint and Resume phases and the total
// data volume (Table I's CR column). On a storage error (failed disk,
// unreachable PVFS server) the job is still resumed — a failed checkpoint
// must never leave the application suspended — the runner's image set is
// invalidated (a half-written snapshot must not be restartable), and the
// first error is returned alongside the partial report.
func (r *Runner) Checkpoint(p *sim.Proc) (*metrics.Report, error) {
	rep := metrics.NewReport(fmt.Sprintf("CR(%s) checkpoint", r.Target))
	watch := metrics.NewStopwatch(rep, p.Now())
	r.sums = make(map[int]uint64)
	r.files = make(map[int]string)
	r.nodes = make(map[int]string)

	// Job Stall: identical machinery to migration Phase 1.
	s := r.W.BeginSuspend()
	s.WaitAllDrained(p)
	s.CompleteTeardown()
	s.WaitAllSuspended(p)
	watch.Lap(metrics.PhaseStall, p.Now())

	// Checkpoint: every rank's C/R thread dumps its image. In the default
	// mode all ranks on a node write concurrently (interleaving streams on
	// the device); with Aggregate, a per-node writer serializes them. The
	// engine is single-threaded, so the children can share firstErr without
	// locking.
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if r.Aggregate {
		byNode := make(map[string][]*mpi.Rank)
		var nodeOrder []string
		for _, rk := range r.W.Ranks() {
			if byNode[rk.Node()] == nil {
				nodeOrder = append(nodeOrder, rk.Node())
			}
			byNode[rk.Node()] = append(byNode[rk.Node()], rk)
		}
		wg := sim.NewWaitGroup(r.C.E)
		wg.Add(len(nodeOrder))
		for _, node := range nodeOrder {
			node := node
			p.SpawnChild("cr.aggwriter."+node, func(cp *sim.Proc) {
				defer wg.Done()
				for _, rk := range byNode[node] {
					n, err := r.checkpointRank(cp, rk)
					rep.BytesMoved += n
					keep(err)
				}
			})
		}
		wg.Wait(p)
	} else {
		wg := sim.NewWaitGroup(r.C.E)
		ranks := r.W.Ranks()
		wg.Add(len(ranks))
		for _, rk := range ranks {
			rk := rk
			p.SpawnChild(fmt.Sprintf("cr.ckpt.%d", rk.ID()), func(cp *sim.Proc) {
				defer wg.Done()
				n, err := r.checkpointRank(cp, rk)
				rep.BytesMoved += n
				keep(err)
			})
		}
		wg.Wait(p)
	}
	watch.Lap(metrics.PhaseCkpt, p.Now())

	// Resume: identical machinery to migration Phase 4 — even after an
	// error, so a failed checkpoint never leaves the job suspended.
	s.Resume()
	s.WaitAllResumed(p)
	watch.Lap(metrics.PhaseResume, p.Now())
	if firstErr != nil {
		// A partial image set must not be restartable.
		r.sums, r.files, r.nodes = nil, nil, nil
		return rep, firstErr
	}
	return rep, nil
}

// checkpointRank dumps one rank's image to the target storage (and syncs it
// on ext3 — a checkpoint that only exists in the page cache is worthless),
// returning the stream size.
func (r *Runner) checkpointRank(cp *sim.Proc, rk *mpi.Rank) (int64, error) {
	if c := obs.Get(r.C.E); c != nil {
		span := c.StartSpan(cp.Now(), fmt.Sprintf("cr.ckpt.rank%d", rk.ID()), rk.Node()+"/cr", 0)
		defer func() { c.EndSpan(cp.Now(), span) }()
	}
	if r.Hash {
		r.sums[rk.ID()] = rk.OS.Checksum()
	}
	name := ckptName(rk.ID())
	r.files[rk.ID()] = name
	r.nodes[rk.ID()] = rk.Node()
	var info *blcr.ImageInfo
	var err error
	if r.Target == Ext3 {
		f := r.C.Node(rk.Node()).FS.Create(cp, name)
		info, err = blcr.Checkpoint(cp, rk.OS, nil, blcr.FileSink{F: f}, blcr.Options{Hash: r.Hash})
		if err == nil {
			err = f.Sync(cp)
		}
		f.Close()
	} else {
		h := r.C.PVFS.Create(cp, rk.Node(), name)
		info, err = blcr.Checkpoint(cp, rk.OS, nil, blcr.FileSink{F: h}, blcr.Options{Hash: r.Hash})
		h.Close()
	}
	if err != nil {
		return 0, fmt.Errorf("cr: checkpoint rank %d: %w", rk.ID(), err)
	}
	return info.Bytes, nil
}

// Restart measures restarting the whole job from the last checkpoint, as
// after a failure: caches are cold and every rank reloads its image. The
// restored processes are adopted into per-node scratch tables (the running
// job is not disturbed — this is the offline restart-cost measurement the
// paper includes "to complement the results").
func (r *Runner) Restart(p *sim.Proc) sim.Duration {
	if r.files == nil {
		panic("cr: Restart before Checkpoint")
	}
	// Ranks may live on spare nodes after a migration; work from their
	// actual placement.
	scratch := make(map[string]*proc.Table)
	for _, rk := range r.W.Ranks() {
		node := rk.Node()
		if scratch[node] == nil {
			scratch[node] = proc.NewTable(node)
			if r.Target == Ext3 {
				r.C.Node(node).FS.DropCaches()
			}
		}
	}
	r.Verified = true
	start := p.Now()
	wg := sim.NewWaitGroup(r.C.E)
	ranks := r.W.Ranks()
	wg.Add(len(ranks))
	for _, rk := range ranks {
		rk := rk
		p.SpawnChild(fmt.Sprintf("cr.restart.%d", rk.ID()), func(rp *sim.Proc) {
			defer wg.Done()
			node := rk.Node()
			if c := obs.Get(r.C.E); c != nil {
				span := c.StartSpan(rp.Now(), fmt.Sprintf("cr.restart.rank%d", rk.ID()), node+"/cr", 0)
				defer func() { c.EndSpan(rp.Now(), span) }()
			}
			var src blcr.Source
			if r.Target == Ext3 {
				f, err := r.C.Node(node).FS.Open(rp, r.files[rk.ID()])
				if err != nil {
					panic("cr: " + err.Error())
				}
				defer f.Close()
				src = blcr.FileSource{F: f}
			} else {
				h, err := r.C.PVFS.Open(rp, node, r.files[rk.ID()])
				if err != nil {
					panic("cr: " + err.Error())
				}
				defer h.Close()
				src = blcr.FileSource{F: h}
			}
			restored, err := blcr.Restart(rp, src, scratch[node], blcr.RestartOptions{Verify: r.Hash})
			if err != nil {
				panic(fmt.Sprintf("cr: restart rank %d: %v", rk.ID(), err))
			}
			if r.Hash && restored.Checksum() != r.sums[rk.ID()] {
				r.Verified = false
			}
		})
	}
	wg.Wait(p)
	// The restored processes are an offline measurement: verified above, then
	// consumed. Clearing the scratch tables releases their extent trees —
	// otherwise every measured restart would leak a full job image's worth of
	// live extents.
	for _, tbl := range scratch {
		tbl.Clear()
	}
	// Images are verified and consumed: close the reclamation epoch so extent
	// nodes retired while streaming them become reusable.
	payload.AdvanceEpoch()
	return p.Now().Sub(start)
}

// RestartInPlace restores the whole job from its last checkpoint into the
// live cluster — the CR-fallback path the migration framework takes when a
// node dies mid-migration and the proactive race is lost. placement overrides
// the hosting node for ranks whose current node can no longer run them (dead
// node, failed adapter); ranks absent from the map restore onto their current
// node. The old process incarnations are removed first, each restored process
// is adopted with its original PID, and the MPI rank is rebound to its
// (possibly new) node. The job must be globally suspended by the caller.
// Caches are dropped before reading (ext3): a post-failure restart is cold.
func (r *Runner) RestartInPlace(p *sim.Proc, placement map[int]string) error {
	if r.files == nil {
		return errors.New("cr: RestartInPlace before Checkpoint")
	}
	ranks := r.W.Ranks()
	dest := make(map[int]string, len(ranks))
	for _, rk := range ranks {
		node := rk.Node()
		if over, ok := placement[rk.ID()]; ok {
			node = over
		}
		if !r.C.NodeAlive(node) {
			return fmt.Errorf("cr: rank %d placed on dead node %s", rk.ID(), node)
		}
		if r.Target == Ext3 {
			// An ext3 image is only reachable from the node whose disk holds
			// it; a dead node takes its local checkpoints with it.
			if home := r.nodes[rk.ID()]; home != node {
				return fmt.Errorf("cr: ext3 image of rank %d is on %s, unreachable from %s", rk.ID(), home, node)
			}
		}
		dest[rk.ID()] = node
	}
	// Remove the old incarnations before adopting restored ones: PIDs are
	// preserved across restart, and some tables may already be empty (crashed
	// node) or hold partially migrated processes.
	for _, rk := range ranks {
		if n := r.C.Node(rk.Node()); n != nil {
			n.Procs.Remove(rk.OS.PID)
		}
	}
	if r.Target == Ext3 {
		dropped := make(map[string]bool)
		for _, node := range dest {
			if !dropped[node] {
				dropped[node] = true
				r.C.Node(node).FS.DropCaches()
			}
		}
	}
	r.Verified = true
	var firstErr error
	wg := sim.NewWaitGroup(r.C.E)
	wg.Add(len(ranks))
	for _, rk := range ranks {
		rk := rk
		p.SpawnChild(fmt.Sprintf("cr.fallback.%d", rk.ID()), func(rp *sim.Proc) {
			defer wg.Done()
			node := dest[rk.ID()]
			if c := obs.Get(r.C.E); c != nil {
				span := c.StartSpan(rp.Now(), fmt.Sprintf("cr.fallback.rank%d", rk.ID()), node+"/cr", 0)
				defer func() { c.EndSpan(rp.Now(), span) }()
			}
			var src blcr.Source
			if r.Target == Ext3 {
				f, err := r.C.Node(node).FS.Open(rp, r.files[rk.ID()])
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				defer f.Close()
				src = blcr.FileSource{F: f}
			} else {
				h, err := r.C.PVFS.Open(rp, node, r.files[rk.ID()])
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				defer h.Close()
				src = blcr.FileSource{F: h}
			}
			restored, err := blcr.Restart(rp, src, r.C.Node(node).Procs, blcr.RestartOptions{Verify: r.Hash})
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("cr: restart rank %d on %s: %w", rk.ID(), node, err)
				}
				return
			}
			// The node may have died while the image streamed in; rebinding the
			// rank onto it would wedge the resume against a dead adapter.
			if !r.C.NodeAlive(node) {
				if firstErr == nil {
					firstErr = fmt.Errorf("cr: node %s died during restart of rank %d", node, rk.ID())
				}
				return
			}
			if r.Hash && restored.Checksum() != r.sums[rk.ID()] {
				r.Verified = false
			}
			r.W.Rebind(rk.ID(), node, restored)
		})
	}
	wg.Wait(p)
	return firstErr
}

// Cleanup removes the checkpoint images from storage, returning their
// extent nodes to the payload arena, and closes the reclamation epoch. Call
// it once the images are no longer needed — the job completed, or a newer
// checkpoint superseded them. The image set is consumed: a later Restart
// must Checkpoint again first. Pure metadata operation, no simulated cost.
func (r *Runner) Cleanup() {
	for id, name := range r.files {
		if r.Target == Ext3 {
			r.C.Node(r.nodes[id]).FS.Remove(name)
		} else {
			r.C.PVFS.Remove(name)
		}
	}
	r.sums, r.files, r.nodes = nil, nil, nil
	payload.AdvanceEpoch()
}

// FullCycle checkpoints and then measures the restart, returning the
// combined four-phase report (the paper's "complete CR cycle").
func (r *Runner) FullCycle(p *sim.Proc) *metrics.Report {
	rep, err := r.Checkpoint(p)
	if err != nil {
		panic("cr: " + err.Error())
	}
	rep.Label = fmt.Sprintf("CR(%s) full cycle", r.Target)
	rep.Add(metrics.PhaseRestart, r.Restart(p))
	return rep
}
