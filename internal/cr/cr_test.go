package cr_test

import (
	"testing"
	"time"

	"ibmig/internal/cluster"
	"ibmig/internal/core"
	"ibmig/internal/cr"
	"ibmig/internal/metrics"
	"ibmig/internal/npb"
	"ibmig/internal/sim"
)

// launchJob starts LU class S (32 ranks, 4 ppn) on an 8-node cluster with 4
// PVFS servers — the paper's node:server ratio, which is what makes the
// shared file system the bottleneck.
func launchJob(t *testing.T) (*sim.Engine, *cluster.Cluster, *core.Framework, *npb.Result, npb.Workload) {
	t.Helper()
	e := sim.NewEngine(23)
	c := cluster.New(e, cluster.Config{ComputeNodes: 8, SpareNodes: 1, PVFSServers: 4})
	w := npb.New(npb.LU, npb.ClassS, 32)
	res := npb.NewResult(w.Ranks)
	fw := core.Launch(c, w, 4, res, core.Options{Hash: true})
	return e, c, fw, res, w
}

func TestCheckpointCycleExt3(t *testing.T) {
	e, c, fw, res, w := launchJob(t)
	var rep *metrics.Report
	var runner *cr.Runner
	e.Spawn("ctl", func(p *sim.Proc) {
		fw.W.WaitReady(p)
		p.Sleep(20 * time.Millisecond)
		runner = cr.NewRunner(c, fw.W, cr.Ext3, true)
		rep = runner.FullCycle(p)
		fw.W.WaitDone(p)
		e.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	// App unharmed.
	for i, n := range res.IterDone {
		if n != w.Iterations {
			t.Fatalf("rank %d finished %d/%d iterations", i, n, w.Iterations)
		}
	}
	// All four phases present; total volume = whole-job images.
	for _, ph := range []string{metrics.PhaseStall, metrics.PhaseCkpt, metrics.PhaseResume, metrics.PhaseRestart} {
		if rep.Phase(ph) <= 0 {
			t.Errorf("phase %q missing", ph)
		}
	}
	var want int64
	for _, rk := range fw.W.Ranks() {
		want += rk.OS.ImageSize() + 64 + 64*int64(len(rk.OS.Segments))
	}
	if rep.BytesMoved != want {
		t.Errorf("CR volume = %d, want %d", rep.BytesMoved, want)
	}
	if !runner.Verified {
		t.Error("restart did not reproduce bit-identical images")
	}
}

func TestCheckpointCyclePVFS(t *testing.T) {
	e, c, fw, _, _ := launchJob(t)
	var rep *metrics.Report
	var runner *cr.Runner
	e.Spawn("ctl", func(p *sim.Proc) {
		fw.W.WaitReady(p)
		p.Sleep(20 * time.Millisecond)
		runner = cr.NewRunner(c, fw.W, cr.PVFS, true)
		rep = runner.FullCycle(p)
		fw.W.WaitDone(p)
		e.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	if !runner.Verified {
		t.Fatal("PVFS restart lost image identity")
	}
	if rep.Phase(metrics.PhaseCkpt) <= 0 || rep.Phase(metrics.PhaseRestart) <= 0 {
		t.Fatal("missing phases")
	}
	// All checkpoint bytes crossed PVFS.
	if got := c.PVFS.BytesWritten; got != rep.BytesMoved {
		t.Errorf("PVFS received %d bytes, report says %d", got, rep.BytesMoved)
	}
}

func TestPVFSSlowerThanExt3UnderContention(t *testing.T) {
	// The paper's central storage observation: dumping all images to the
	// shared PVFS is slower than node-local ext3 because the streams contend
	// on 4 server disks instead of spreading over all node disks.
	run := func(target cr.Target) sim.Duration {
		e, c, fw, _, _ := launchJob(t)
		var d sim.Duration
		e.Spawn("ctl", func(p *sim.Proc) {
			fw.W.WaitReady(p)
			p.Sleep(20 * time.Millisecond)
			rep, err := cr.NewRunner(c, fw.W, target, false).Checkpoint(p)
			if err != nil {
				t.Error(err)
				e.Stop()
				return
			}
			d = rep.Phase(metrics.PhaseCkpt)
			fw.W.WaitDone(p)
			e.Stop()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		e.Shutdown()
		return d
	}
	ext3 := run(cr.Ext3)
	pvfs := run(cr.PVFS)
	if pvfs <= ext3 {
		t.Fatalf("PVFS checkpoint (%v) not slower than ext3 (%v)", pvfs, ext3)
	}
}

func TestMigrationBeatsFullCRCycle(t *testing.T) {
	// The headline comparison (Fig. 7): handling a node failure by migration
	// is faster than a full CR cycle, and moves ~ranks/ppn× less data.
	e, c, fw, _, _ := launchJob(t)
	var migTotal, crTotal sim.Duration
	var migBytes, crBytes int64
	e.Spawn("ctl", func(p *sim.Proc) {
		fw.W.WaitReady(p)
		p.Sleep(20 * time.Millisecond)
		done := fw.TriggerMigration(p, "node02")
		done.Wait(p)
		migTotal = fw.Reports[0].Total()
		migBytes = fw.Reports[0].BytesMoved
		rep := cr.NewRunner(c, fw.W, cr.PVFS, false).FullCycle(p)
		crTotal = rep.Total()
		crBytes = rep.BytesMoved
		fw.W.WaitDone(p)
		e.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	if migTotal >= crTotal {
		t.Fatalf("migration (%v) not faster than CR full cycle (%v)", migTotal, crTotal)
	}
	// 32 ranks, 4 per node: migration moves 1/8 of the data.
	if ratio := float64(crBytes) / float64(migBytes); ratio < 7.5 || ratio > 8.5 {
		t.Fatalf("CR/migration data ratio = %.2f, want ~8", ratio)
	}
}

func TestRestartBeforeCheckpointPanics(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.Config{ComputeNodes: 2, SpareNodes: 1, PVFSServers: 0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r := &cr.Runner{C: c}
	r.Restart(nil)
}

func TestWriteAggregationSpeedsUpCheckpoints(t *testing.T) {
	// Node-level write aggregation eliminates inter-stream seeking. Its win
	// needs real contention — the paper's 8 writers per node — so this test
	// uses 64 ranks at 8 per node (the op overheads that aggregation
	// serializes must be amortized over enough interleaved streams).
	run := func(target cr.Target, aggregate bool) sim.Duration {
		e := sim.NewEngine(23)
		c := cluster.New(e, cluster.Config{ComputeNodes: 4, SpareNodes: 1, PVFSServers: 4})
		w := npb.New(npb.LU, npb.ClassS, 32)
		res := npb.NewResult(w.Ranks)
		fw := core.Launch(c, w, 8, res, core.Options{})
		var d sim.Duration
		e.Spawn("ctl", func(p *sim.Proc) {
			fw.W.WaitReady(p)
			p.Sleep(10 * time.Millisecond)
			runner := cr.NewRunner(c, fw.W, target, true)
			runner.Aggregate = aggregate
			rep := runner.FullCycle(p)
			if !runner.Verified {
				t.Errorf("aggregate=%v target=%v lost image identity", aggregate, target)
			}
			d = rep.Phase(metrics.PhaseCkpt)
			fw.W.WaitDone(p)
			e.Stop()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		e.Shutdown()
		return d
	}
	for _, target := range []cr.Target{cr.Ext3, cr.PVFS} {
		plain := run(target, false)
		agg := run(target, true)
		if agg >= plain {
			t.Errorf("%v: aggregated checkpoint (%v) not faster than interleaved (%v)", target, agg, plain)
		}
	}
}

// TestCheckpointCycleExtentLeak is the arena leak guard: a full
// checkpoint→restart cycle plus Cleanup must return the process-wide
// live-extent level to its pre-cycle baseline. The baseline is taken after a
// first cycle so every lazily-materialized region (first TouchMemory, first
// checkpoint read) is already counted; the second cycle must then be
// extent-neutral for both storage targets.
func TestCheckpointCycleExtentLeak(t *testing.T) {
	for _, target := range []cr.Target{cr.Ext3, cr.PVFS} {
		e, c, fw, _, _ := launchJob(t)
		var base, after int64
		e.Spawn("ctl", func(p *sim.Proc) {
			fw.W.WaitReady(p)
			p.Sleep(20 * time.Millisecond)
			warm := cr.NewRunner(c, fw.W, target, true)
			warm.FullCycle(p)
			warm.Cleanup()
			base = metrics.CaptureDataPlane().LiveExtents

			runner := cr.NewRunner(c, fw.W, target, true)
			runner.FullCycle(p)
			if !runner.Verified {
				t.Errorf("%v: restart lost image identity", target)
			}
			runner.Cleanup()
			after = metrics.CaptureDataPlane().LiveExtents
			fw.W.WaitDone(p)
			e.Stop()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		e.Shutdown()
		if after != base {
			t.Errorf("%v: live extents %d after cycle+cleanup, want pre-cycle baseline %d (leak of %d)",
				target, after, base, after-base)
		}
	}
}
