// Package proc models operating-system processes as checkpointable address
// spaces: named memory segments over simulated memory regions, owned by a
// per-node process table. The BLCR layer walks these address spaces to build
// process images, and the migration framework moves them between nodes.
package proc

import (
	"fmt"

	"ibmig/internal/mem"
)

// Segment is one mapped region of a process address space.
type Segment struct {
	Name   string // "text", "data", "heap", "stack", ...
	VAddr  uint64
	Region *mem.Region
}

// Process is one simulated OS process.
type Process struct {
	PID      int
	Name     string
	Rank     int // MPI rank, or -1
	Node     string
	Segments []*Segment
}

// SegmentSpec describes a segment to create.
type SegmentSpec struct {
	Name  string
	VAddr uint64
	Size  int64
	Seed  uint64 // deterministic initial content
}

// New creates a process with the given address-space layout.
func New(pid int, name string, rank int, node string, segs []SegmentSpec) *Process {
	pr := &Process{PID: pid, Name: name, Rank: rank, Node: node}
	for _, s := range segs {
		pr.Segments = append(pr.Segments, &Segment{
			Name:   s.Name,
			VAddr:  s.VAddr,
			Region: mem.NewRegion(s.Size, s.Seed),
		})
	}
	return pr
}

// ImageSize returns the total mapped bytes — the size of a full memory dump.
func (pr *Process) ImageSize() int64 {
	var n int64
	for _, s := range pr.Segments {
		n += s.Region.Size()
	}
	return n
}

// Checksum returns a combined checksum over all segments, in segment order.
func (pr *Process) Checksum() uint64 {
	var h uint64 = 14695981039346656037
	for _, s := range pr.Segments {
		c := s.Region.Checksum()
		for i := 0; i < 8; i++ {
			h = (h ^ (c >> (8 * uint(i)) & 0xff)) * 1099511628211
		}
	}
	return h
}

// Segment returns the named segment, or nil.
func (pr *Process) Segment(name string) *Segment {
	for _, s := range pr.Segments {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Release returns every segment's extent nodes to the payload arena. Called
// when the process's lifecycle ends: it exited, or its image has migrated
// away and the source copy is being discarded.
func (pr *Process) Release() {
	for _, s := range pr.Segments {
		s.Region.Release()
	}
}

// Table is a per-node process table.
type Table struct {
	Node    string
	nextPID int
	procs   map[int]*Process
}

// NewTable creates an empty process table for a node.
func NewTable(node string) *Table {
	return &Table{Node: node, nextPID: 1000, procs: make(map[int]*Process)}
}

// Spawn creates a new process in this table with a fresh PID.
func (t *Table) Spawn(name string, rank int, segs []SegmentSpec) *Process {
	t.nextPID++
	pr := New(t.nextPID, name, rank, t.Node, segs)
	t.procs[pr.PID] = pr
	return pr
}

// Adopt inserts an existing process (e.g. one restored from a checkpoint
// image) into the table, preserving its PID as BLCR does. It fails if the PID
// is taken.
func (t *Table) Adopt(pr *Process) error {
	if _, exists := t.procs[pr.PID]; exists {
		return fmt.Errorf("proc: pid %d already exists on %s", pr.PID, t.Node)
	}
	pr.Node = t.Node
	t.procs[pr.PID] = pr
	return nil
}

// Remove deletes a process from the table (exit or migration away), returning
// its memory to the payload arena.
func (t *Table) Remove(pid int) {
	if pr := t.procs[pid]; pr != nil {
		pr.Release()
	}
	delete(t.procs, pid)
}

// Clear empties the table — every process is gone at once, as when the node
// hosting it crashes. Segment memory is returned to the arena: the simulated
// images die with the node, and any checkpoint copy lives in the VFS.
func (t *Table) Clear() {
	for _, pr := range t.procs {
		pr.Release()
	}
	t.procs = make(map[int]*Process)
}

// Get returns the process with the given PID, or nil.
func (t *Table) Get(pid int) *Process { return t.procs[pid] }

// Len returns the number of live processes.
func (t *Table) Len() int { return len(t.procs) }
