package proc

import (
	"testing"
)

func specs() []SegmentSpec {
	return []SegmentSpec{
		{Name: "text", VAddr: 0x400000, Size: 1 << 20, Seed: 1},
		{Name: "heap", VAddr: 0x20000000, Size: 4 << 20, Seed: 2},
		{Name: "stack", VAddr: 0x7ff0000000, Size: 1 << 20, Seed: 3},
	}
}

func TestSpawnAssignsUniquePIDs(t *testing.T) {
	tab := NewTable("n0")
	a := tab.Spawn("app", 0, specs())
	b := tab.Spawn("app", 1, specs())
	if a.PID == b.PID {
		t.Fatal("duplicate PIDs")
	}
	if tab.Len() != 2 {
		t.Fatalf("table len = %d", tab.Len())
	}
	if tab.Get(a.PID) != a || tab.Get(b.PID) != b {
		t.Fatal("lookup broken")
	}
}

func TestImageSizeSumsSegments(t *testing.T) {
	tab := NewTable("n0")
	p := tab.Spawn("app", 0, specs())
	if p.ImageSize() != 6<<20 {
		t.Fatalf("image size = %d, want 6MB", p.ImageSize())
	}
}

func TestChecksumSensitiveToContentAndOrder(t *testing.T) {
	tab := NewTable("n0")
	a := tab.Spawn("app", 0, specs())
	b := tab.Spawn("app", 0, specs())
	if a.Checksum() != b.Checksum() {
		t.Fatal("identical layouts differ")
	}
	s := specs()
	s[0].Seed = 99
	c := tab.Spawn("app", 0, s)
	if a.Checksum() == c.Checksum() {
		t.Fatal("content change not detected")
	}
}

func TestSegmentLookup(t *testing.T) {
	tab := NewTable("n0")
	p := tab.Spawn("app", 0, specs())
	if p.Segment("heap") == nil || p.Segment("heap").VAddr != 0x20000000 {
		t.Fatal("heap lookup failed")
	}
	if p.Segment("nope") != nil {
		t.Fatal("phantom segment")
	}
}

func TestAdoptPreservesPIDAndRebinds(t *testing.T) {
	src := NewTable("a")
	dst := NewTable("b")
	p := src.Spawn("app", 3, specs())
	src.Remove(p.PID)
	if err := dst.Adopt(p); err != nil {
		t.Fatal(err)
	}
	if p.Node != "b" || dst.Get(p.PID) != p {
		t.Fatal("adopt did not rebind")
	}
	// Second adopt with the same PID fails.
	q := New(p.PID, "app", 4, "x", specs())
	if err := dst.Adopt(q); err == nil {
		t.Fatal("duplicate PID adopted")
	}
}
