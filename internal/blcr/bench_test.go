package blcr

import (
	"fmt"
	"testing"

	"ibmig/internal/proc"
	"ibmig/internal/sim"
)

// BenchmarkCheckpointRestartRoundTrip measures a full in-memory round trip
// of a 32 MB process image (without content hashing, as the timing paths do).
func BenchmarkCheckpointRestartRoundTrip(b *testing.B) {
	e := sim.NewEngine(1)
	src := proc.NewTable("a")
	pr := src.Spawn("app", 0, []proc.SegmentSpec{
		{Name: "text", VAddr: 0x400000, Size: 2 << 20, Seed: 1},
		{Name: "heap", VAddr: 0x20000000, Size: 30 << 20, Seed: 2},
	})
	e.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			sink := &BufferSink{}
			if _, err := Checkpoint(p, pr, nil, sink, Options{}); err != nil {
				b.Error(err)
				return
			}
			dst := proc.NewTable(fmt.Sprintf("b%d", i))
			if _, err := Restart(p, &BufferSource{Buf: sink.Buf}, dst, RestartOptions{}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.SetBytes(32 << 20)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCheckpointVerified includes end-to-end content hashing.
func BenchmarkCheckpointVerified(b *testing.B) {
	e := sim.NewEngine(1)
	src := proc.NewTable("a")
	pr := src.Spawn("app", 0, []proc.SegmentSpec{
		{Name: "heap", VAddr: 0x20000000, Size: 8 << 20, Seed: 2},
	})
	e.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			sink := &BufferSink{}
			if _, err := Checkpoint(p, pr, nil, sink, Options{Hash: true}); err != nil {
				b.Error(err)
				return
			}
			dst := proc.NewTable(fmt.Sprintf("b%d", i))
			if _, err := Restart(p, &BufferSource{Buf: sink.Buf}, dst, RestartOptions{Verify: true}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.SetBytes(8 << 20)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
