package blcr

import (
	"testing"
	"testing/quick"
	"time"

	"ibmig/internal/payload"
	"ibmig/internal/proc"
	"ibmig/internal/sim"
	"ibmig/internal/vfs"
)

func testProcess(t *proc.Table, rank int, segSizes ...int64) *proc.Process {
	var specs []proc.SegmentSpec
	names := []string{"text", "data", "heap", "stack", "anon"}
	for i, sz := range segSizes {
		specs = append(specs, proc.SegmentSpec{
			Name:  names[i%len(names)],
			VAddr: 0x400000 + uint64(i)*0x10000000,
			Size:  sz,
			Seed:  uint64(rank*100 + i),
		})
	}
	return t.Spawn("app", rank, specs)
}

func TestCheckpointRestartRoundTripMemory(t *testing.T) {
	e := sim.NewEngine(1)
	src := proc.NewTable("nodeA")
	dst := proc.NewTable("nodeB")
	pr := testProcess(src, 3, 1<<20, 4<<20, 64<<10)
	wantSum := pr.Checksum()
	wantSize := pr.ImageSize()
	e.Spawn("main", func(p *sim.Proc) {
		sink := &BufferSink{}
		info, err := Checkpoint(p, pr, nil, sink, Options{Hash: true})
		if err != nil {
			t.Error(err)
			return
		}
		if info.Payload != wantSize {
			t.Errorf("payload bytes = %d, want %d", info.Payload, wantSize)
		}
		if info.Bytes != sink.Buf.Size() {
			t.Errorf("stream bytes = %d, info says %d", sink.Buf.Size(), info.Bytes)
		}
		restored, err := Restart(p, &BufferSource{Buf: sink.Buf}, dst, RestartOptions{Verify: true})
		if err != nil {
			t.Error(err)
			return
		}
		if restored.PID != pr.PID || restored.Rank != pr.Rank || restored.Name != pr.Name {
			t.Errorf("identity mismatch: %+v vs %+v", restored, pr)
		}
		if restored.Checksum() != wantSum {
			t.Error("restored image is not bit-identical")
		}
		if restored.Node != "nodeB" {
			t.Errorf("restored on %s", restored.Node)
		}
		if len(restored.Segments) != len(pr.Segments) {
			t.Errorf("segments = %d, want %d", len(restored.Segments), len(pr.Segments))
		}
		for i, s := range restored.Segments {
			o := pr.Segments[i]
			if s.Name != o.Name || s.VAddr != o.VAddr || s.Region.Size() != o.Region.Size() {
				t.Errorf("segment %d layout mismatch", i)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripThroughLocalFile(t *testing.T) {
	e := sim.NewEngine(1)
	fs := vfs.NewFileSystem(e, "n", vfs.NewDisk(e, "d", vfs.DiskConfig{}), vfs.FSConfig{})
	srcT := proc.NewTable("n")
	dstT := proc.NewTable("n2")
	pr := testProcess(srcT, 0, 2<<20, 512<<10)
	want := pr.Checksum()
	e.Spawn("main", func(p *sim.Proc) {
		f := fs.Create(p, "context.0")
		if _, err := Checkpoint(p, pr, nil, FileSink{F: f}, Options{Hash: true}); err != nil {
			t.Error(err)
		}
		f.Sync(p)
		f.Close()
		rf, err := fs.Open(p, "context.0")
		if err != nil {
			t.Error(err)
			return
		}
		restored, err := Restart(p, FileSource{F: rf}, dstT, RestartOptions{Verify: true})
		rf.Close()
		if err != nil {
			t.Error(err)
			return
		}
		if restored.Checksum() != want {
			t.Error("file round trip lost content")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRestartDetectsCorruption(t *testing.T) {
	e := sim.NewEngine(1)
	srcT := proc.NewTable("a")
	dstT := proc.NewTable("b")
	pr := testProcess(srcT, 1, 256<<10)
	e.Spawn("main", func(p *sim.Proc) {
		sink := &BufferSink{}
		if _, err := Checkpoint(p, pr, nil, sink, Options{Hash: true}); err != nil {
			t.Error(err)
			return
		}
		// Corrupt one payload byte (after both headers).
		stream := sink.Buf
		var corrupted payload.Buffer
		corrupted.AppendBuffer(stream.Slice(0, 200))
		corrupted.AppendBuffer(payload.FromBytes([]byte{0xFF}))
		corrupted.AppendBuffer(stream.Slice(201, stream.Size()-201))
		if _, err := Restart(p, &BufferSource{Buf: corrupted}, dstT, RestartOptions{Verify: true}); err == nil {
			t.Error("restart accepted a corrupted stream")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRestartRejectsGarbageAndTruncation(t *testing.T) {
	e := sim.NewEngine(1)
	dstT := proc.NewTable("b")
	srcT := proc.NewTable("a")
	pr := testProcess(srcT, 0, 64<<10)
	e.Spawn("main", func(p *sim.Proc) {
		if _, err := Restart(p, &BufferSource{Buf: payload.Synth(1, 0, 4096)}, dstT, RestartOptions{}); err != ErrBadMagic {
			t.Errorf("garbage stream: err = %v, want ErrBadMagic", err)
		}
		sink := &BufferSink{}
		if _, err := Checkpoint(p, pr, nil, sink, Options{Hash: true}); err != nil {
			t.Error(err)
			return
		}
		truncated := sink.Buf.Slice(0, sink.Buf.Size()/2)
		if _, err := Restart(p, &BufferSource{Buf: truncated}, dstT, RestartOptions{}); err != ErrShortStream {
			t.Errorf("truncated stream: err = %v, want ErrShortStream", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCallbacksFire(t *testing.T) {
	e := sim.NewEngine(1)
	srcT := proc.NewTable("a")
	dstT := proc.NewTable("b")
	pr := testProcess(srcT, 0, 64<<10)
	var pre, post int
	cb := &Callbacks{
		PreCheckpoint: func(p *sim.Proc) { pre++ },
		Restart:       func(p *sim.Proc, restored *proc.Process) { post++ },
	}
	e.Spawn("main", func(p *sim.Proc) {
		sink := &BufferSink{}
		if _, err := Checkpoint(p, pr, cb, sink, Options{Hash: true}); err != nil {
			t.Error(err)
			return
		}
		if _, err := Restart(p, &BufferSource{Buf: sink.Buf}, dstT, RestartOptions{Callbacks: cb}); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if pre != 1 || post != 1 {
		t.Fatalf("pre=%d post=%d, want 1,1", pre, post)
	}
}

func TestStreamInfoPeek(t *testing.T) {
	e := sim.NewEngine(1)
	srcT := proc.NewTable("a")
	pr := testProcess(srcT, 7, 128<<10)
	e.Spawn("main", func(p *sim.Proc) {
		sink := &BufferSink{}
		info, err := Checkpoint(p, pr, nil, sink, Options{Hash: true})
		if err != nil {
			t.Error(err)
			return
		}
		pid, rank, total, err := StreamInfo(p, &BufferSource{Buf: sink.Buf})
		if err != nil || pid != pr.PID || rank != 7 || total != info.Bytes {
			t.Errorf("peek: pid=%d rank=%d total=%d err=%v", pid, rank, total, err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAdoptDuplicatePIDFails(t *testing.T) {
	e := sim.NewEngine(1)
	srcT := proc.NewTable("a")
	pr := testProcess(srcT, 0, 4096)
	e.Spawn("main", func(p *sim.Proc) {
		sink := &BufferSink{}
		if _, err := Checkpoint(p, pr, nil, sink, Options{Hash: true}); err != nil {
			t.Error(err)
			return
		}
		// Restarting on the same node where the PID still lives must fail.
		if _, err := Restart(p, &BufferSource{Buf: sink.Buf}, srcT, RestartOptions{}); err == nil {
			t.Error("restart over a live PID succeeded")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointTimeScalesWithImageSize(t *testing.T) {
	e := sim.NewEngine(1)
	tab := proc.NewTable("a")
	small := testProcess(tab, 0, 1<<20)
	big := testProcess(tab, 1, 32<<20)
	var tSmall, tBig sim.Duration
	e.Spawn("main", func(p *sim.Proc) {
		start := p.Now()
		if _, err := Checkpoint(p, small, nil, &BufferSink{}, Options{}); err != nil {
			t.Error(err)
		}
		tSmall = p.Now().Sub(start)
		start = p.Now()
		if _, err := Checkpoint(p, big, nil, &BufferSink{}, Options{}); err != nil {
			t.Error(err)
		}
		tBig = p.Now().Sub(start)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if tBig < 2*tSmall {
		t.Fatalf("32MB ckpt (%v) not appreciably slower than 1MB (%v)", tBig, tSmall)
	}
	if tSmall < 5*time.Millisecond {
		t.Fatalf("checkpoint faster than freeze cost: %v", tSmall)
	}
}

// Property: round trip preserves image identity for arbitrary segment
// layouts.
func TestQuickRoundTripIdentity(t *testing.T) {
	f := func(rank uint8, sizes []uint16) bool {
		if len(sizes) == 0 {
			sizes = []uint16{1}
		}
		if len(sizes) > 6 {
			sizes = sizes[:6]
		}
		e := sim.NewEngine(1)
		srcT := proc.NewTable("a")
		dstT := proc.NewTable("b")
		var segs []int64
		for _, s := range sizes {
			segs = append(segs, int64(s)+1)
		}
		pr := testProcess(srcT, int(rank), segs...)
		want := pr.Checksum()
		okRes := false
		e.Spawn("main", func(p *sim.Proc) {
			sink := &BufferSink{}
			if _, err := Checkpoint(p, pr, nil, sink, Options{Hash: true}); err != nil {
				return
			}
			restored, err := Restart(p, &BufferSource{Buf: sink.Buf}, dstT, RestartOptions{Verify: true})
			if err != nil {
				return
			}
			okRes = restored.Checksum() == want && restored.ImageSize() == pr.ImageSize()
		})
		return e.Run() == nil && okRes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
