// Package blcr reimplements the behaviour of Berkeley Lab Checkpoint/Restart
// that the paper depends on: dumping a process's address space to a
// vmadump-style stream and rebuilding an identical process from such a
// stream, with pre-checkpoint/continue/restart callbacks for library
// cooperation (MVAPICH2 registers its C/R thread logic through these).
//
// The paper's key extension — redirecting checkpoint writes of multiple
// processes into a user-level aggregation buffer pool instead of files — is
// supported through the Sink interface: the migration framework supplies a
// buffer-pool sink, the Checkpoint/Restart baseline supplies file sinks.
//
// Stream format (byte-accurate; headers are real bytes, page data may be
// symbolic):
//
//	file header   64 B  magic, pid, rank, #segments, image bytes
//	per segment:
//	  seg header  64 B  name, vaddr, length, content checksum
//	  page data   length bytes
package blcr

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ibmig/internal/calib"
	"ibmig/internal/mem"
	"ibmig/internal/payload"
	"ibmig/internal/proc"
	"ibmig/internal/sim"
)

const (
	headerSize = 64
	magic      = 0x424c435253494d31 // "BLCRSIM1"
)

// Errors.
var (
	ErrBadMagic    = errors.New("blcr: bad stream magic")
	ErrCorrupt     = errors.New("blcr: segment checksum mismatch")
	ErrShortStream = errors.New("blcr: truncated stream")
)

// Sink receives the checkpoint stream. Write is called in checkpoint order;
// implementations charge their own medium costs (file cache, buffer pool,
// network). A Write error aborts the checkpoint.
type Sink interface {
	Write(p *sim.Proc, b payload.Buffer) error
}

// Source provides a checkpoint stream for restart.
type Source interface {
	ReadAt(p *sim.Proc, off, n int64) payload.Buffer
	Size() int64
}

// BufferSink collects the stream in memory with no timing cost (tests, and
// the memory-based restart path).
type BufferSink struct {
	Buf payload.Buffer
}

// Write implements Sink.
func (s *BufferSink) Write(_ *sim.Proc, b payload.Buffer) error {
	s.Buf.AppendBuffer(b)
	return nil
}

// BufferSource serves a stream from memory with no timing cost.
type BufferSource struct {
	Buf payload.Buffer
}

// ReadAt implements Source.
func (s *BufferSource) ReadAt(_ *sim.Proc, off, n int64) payload.Buffer { return s.Buf.Slice(off, n) }

// Size implements Source.
func (s *BufferSource) Size() int64 { return s.Buf.Size() }

// Callbacks are the cr_register_callback hooks a library can attach to a
// process.
type Callbacks struct {
	// PreCheckpoint runs after the process is frozen, before the dump.
	PreCheckpoint func(p *sim.Proc)
	// Continue runs on the original process after a successful checkpoint.
	Continue func(p *sim.Proc)
	// Restart runs on the rebuilt process after a successful restart.
	Restart func(p *sim.Proc, restored *proc.Process)
}

// ImageInfo summarizes a produced checkpoint.
type ImageInfo struct {
	PID      int
	Rank     int
	Bytes    int64 // total stream size including headers
	Payload  int64 // memory bytes only
	Checksum uint64
}

// fileHeader <-> bytes.
func encodeFileHeader(pr *proc.Process, imageBytes int64) []byte {
	h := make([]byte, headerSize)
	binary.LittleEndian.PutUint64(h[0:], magic)
	binary.LittleEndian.PutUint64(h[8:], uint64(pr.PID))
	binary.LittleEndian.PutUint64(h[16:], uint64(int64(pr.Rank)))
	binary.LittleEndian.PutUint64(h[24:], uint64(len(pr.Segments)))
	binary.LittleEndian.PutUint64(h[32:], uint64(imageBytes))
	copy(h[40:], pr.Name)
	return h
}

func encodeSegHeader(s *proc.Segment, sum uint64) []byte {
	h := make([]byte, headerSize)
	copy(h[0:24], s.Name)
	binary.LittleEndian.PutUint64(h[24:], s.VAddr)
	binary.LittleEndian.PutUint64(h[32:], uint64(s.Region.Size()))
	binary.LittleEndian.PutUint64(h[40:], sum)
	return h
}

// Options tune Checkpoint.
type Options struct {
	// Hash computes per-segment content checksums and embeds them in the
	// stream so Restart can verify bit-identity. Correctness tests keep this
	// on; pure timing runs at multi-GB scale may disable it (a zero checksum
	// in the stream disables verification for that segment).
	Hash bool
}

// Checkpoint freezes pr, runs its pre-checkpoint callback, and streams its
// image into sink. The calling process pays the freeze, per-page scan and
// memory-copy costs; the sink charges its own costs in Write. The process is
// left frozen; call the Continue callback (or just resume the owner) after.
func Checkpoint(p *sim.Proc, pr *proc.Process, cb *Callbacks, sink Sink, opts Options) (*ImageInfo, error) {
	p.Sleep(calib.CkptFreezePerProc)
	if cb != nil && cb.PreCheckpoint != nil {
		cb.PreCheckpoint(p)
	}
	payloadBytes := pr.ImageSize()
	total := int64(headerSize) + int64(len(pr.Segments))*headerSize + payloadBytes
	info := &ImageInfo{PID: pr.PID, Rank: pr.Rank, Bytes: total, Payload: payloadBytes}
	if err := sink.Write(p, payload.FromBytes(encodeFileHeader(pr, total))); err != nil {
		return nil, err
	}
	for _, s := range pr.Segments {
		data := s.Region.Content()
		var sum uint64
		if opts.Hash {
			sum = data.Checksum()
			info.Checksum = info.Checksum*1099511628211 + sum
		}
		if err := sink.Write(p, payload.FromBytes(encodeSegHeader(s, sum))); err != nil {
			return nil, err
		}
		// Dump cost: page-table walk plus copying the bytes out of the
		// address space.
		pages := (data.Size() + calib.PageSize - 1) / calib.PageSize
		p.Sleep(sim.Duration(pages) * calib.CkptPerPage)
		p.Sleep(sim.Duration(float64(data.Size()) / float64(calib.MemcpyBandwidth) * 1e9))
		if err := sink.Write(p, data); err != nil {
			return nil, err
		}
	}
	p.Trace("blcr.checkpoint", fmt.Sprintf("pid=%d rank=%d bytes=%d", pr.PID, pr.Rank, info.Bytes))
	return info, nil
}

// RestartOptions tune Restart.
type RestartOptions struct {
	// Verify controls per-segment content checksum verification (the default
	// true mirrors our "image identity" invariant; disable only in
	// throughput micro-benchmarks).
	Verify bool
	// Callbacks to run on the restored process.
	Callbacks *Callbacks
}

// Restart rebuilds a process from a checkpoint stream, verifying integrity,
// and adopts it into the node's process table. The calling process pays the
// per-process rebuild cost, per-page restore cost and the source's read
// costs.
func Restart(p *sim.Proc, src Source, table *proc.Table, opts RestartOptions) (*proc.Process, error) {
	if src.Size() < headerSize {
		return nil, ErrShortStream
	}
	p.Sleep(calib.RestartPerProcBase)
	fh := src.ReadAt(p, 0, headerSize).Materialize()
	if binary.LittleEndian.Uint64(fh[0:]) != magic {
		return nil, ErrBadMagic
	}
	pid := int(binary.LittleEndian.Uint64(fh[8:]))
	rank := int(int64(binary.LittleEndian.Uint64(fh[16:])))
	nseg := int(binary.LittleEndian.Uint64(fh[24:]))
	want := int64(binary.LittleEndian.Uint64(fh[32:]))
	if want > src.Size() {
		return nil, ErrShortStream
	}
	name := trimZero(fh[40:])
	pr := &proc.Process{PID: pid, Name: name, Rank: rank, Node: table.Node}
	off := int64(headerSize)
	for i := 0; i < nseg; i++ {
		if off+headerSize > src.Size() {
			return nil, ErrShortStream
		}
		sh := src.ReadAt(p, off, headerSize).Materialize()
		off += headerSize
		segName := trimZero(sh[0:24])
		vaddr := binary.LittleEndian.Uint64(sh[24:])
		length := int64(binary.LittleEndian.Uint64(sh[32:]))
		sum := binary.LittleEndian.Uint64(sh[40:])
		if off+length > src.Size() {
			return nil, ErrShortStream
		}
		data := src.ReadAt(p, off, length)
		off += length
		if opts.Verify && sum != 0 && data.Checksum() != sum {
			return nil, fmt.Errorf("%w: segment %q of pid %d", ErrCorrupt, segName, pid)
		}
		pages := (length + calib.PageSize - 1) / calib.PageSize
		p.Sleep(sim.Duration(pages) * calib.RestartPerPage)
		p.Sleep(sim.Duration(float64(length) / float64(calib.MemcpyBandwidth) * 1e9))
		pr.Segments = append(pr.Segments, &proc.Segment{
			Name:   segName,
			VAddr:  vaddr,
			Region: mem.NewRegionWith(data),
		})
	}
	if err := table.Adopt(pr); err != nil {
		return nil, err
	}
	if opts.Callbacks != nil && opts.Callbacks.Restart != nil {
		opts.Callbacks.Restart(p, pr)
	}
	p.Trace("blcr.restart", fmt.Sprintf("pid=%d rank=%d bytes=%d", pid, rank, want))
	return pr, nil
}

// StreamInfo parses only the file header of a stream (cheap peek used by the
// NLA to learn rank/pid of arriving images).
func StreamInfo(p *sim.Proc, src Source) (pid, rank int, total int64, err error) {
	if src.Size() < headerSize {
		return 0, 0, 0, ErrShortStream
	}
	fh := src.ReadAt(p, 0, headerSize).Materialize()
	if binary.LittleEndian.Uint64(fh[0:]) != magic {
		return 0, 0, 0, ErrBadMagic
	}
	pid = int(binary.LittleEndian.Uint64(fh[8:]))
	rank = int(int64(binary.LittleEndian.Uint64(fh[16:])))
	total = int64(binary.LittleEndian.Uint64(fh[32:]))
	return pid, rank, total, nil
}

func trimZero(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

// FileSink adapts a local file to the Sink interface (append-only, as BLCR's
// write path is).
type FileSink struct {
	F interface {
		Append(p *sim.Proc, b payload.Buffer) error
	}
}

// Write implements Sink.
func (s FileSink) Write(p *sim.Proc, b payload.Buffer) error { return s.F.Append(p, b) }

// FileSource adapts anything with ReadAt/Size (local files, PVFS handles) to
// the Source interface.
type FileSource struct {
	F interface {
		ReadAt(p *sim.Proc, off, n int64) payload.Buffer
		Size() int64
	}
}

// ReadAt implements Source.
func (s FileSource) ReadAt(p *sim.Proc, off, n int64) payload.Buffer { return s.F.ReadAt(p, off, n) }

// Size implements Source.
func (s FileSource) Size() int64 { return s.F.Size() }
