package metrics

import (
	"fmt"

	"ibmig/internal/payload"
)

// Arena is a snapshot of the extent-arena telemetry: slab and free-list
// levels, recycling flow, epoch reclamation activity, and the live-extent
// high-water mark. Like DataPlane it is process-wide and host-side only;
// capture before and after a run and Delta to attribute activity.
type Arena struct {
	Chunks          int64  // node slabs allocated since process start
	FreeNodes       int64  // free-list depth (global pool + all trees)
	RetiredNodes    int64  // nodes awaiting an epoch close
	Recycled        uint64 // allocations served from a free list
	Minted          uint64 // allocations served by fresh chunk slots
	EpochFrees      uint64 // nodes reclaimed at epoch boundaries
	EpochsClosed    uint64 // reclamation epochs closed
	PeakLiveExtents int64  // high-water mark of live extents
	Compactions     uint64 // compaction passes that reclaimed extents
	CompactedAway   uint64 // extents eliminated by compaction
}

// CaptureArena snapshots the current arena counter values.
func CaptureArena() Arena {
	s := payload.ArenaSnapshot()
	return Arena{
		Chunks:          s.Chunks,
		FreeNodes:       s.FreeNodes,
		RetiredNodes:    s.RetiredNodes,
		Recycled:        s.Recycled,
		Minted:          s.Minted,
		EpochFrees:      s.EpochFrees,
		EpochsClosed:    s.EpochsClosed,
		PeakLiveExtents: s.PeakLiveExtents,
		Compactions:     s.Compactions,
		CompactedAway:   s.CompactedAway,
	}
}

// Delta returns the activity between the since snapshot and this one. The
// level fields (Chunks, FreeNodes, RetiredNodes, PeakLiveExtents) keep their
// current absolute values — a peak or a pool depth has no meaningful
// difference — while the flow counters subtract.
func (a Arena) Delta(since Arena) Arena {
	return Arena{
		Chunks:          a.Chunks,
		FreeNodes:       a.FreeNodes,
		RetiredNodes:    a.RetiredNodes,
		Recycled:        a.Recycled - since.Recycled,
		Minted:          a.Minted - since.Minted,
		EpochFrees:      a.EpochFrees - since.EpochFrees,
		EpochsClosed:    a.EpochsClosed - since.EpochsClosed,
		PeakLiveExtents: a.PeakLiveExtents,
		Compactions:     a.Compactions - since.Compactions,
		CompactedAway:   a.CompactedAway - since.CompactedAway,
	}
}

func (a Arena) String() string {
	return fmt.Sprintf(
		"arena: %d chunks | %d free | %d retired | %d recycled / %d minted | %d epoch frees over %d epochs | peak %d live extents | %d compactions (-%d extents)",
		a.Chunks, a.FreeNodes, a.RetiredNodes, a.Recycled, a.Minted,
		a.EpochFrees, a.EpochsClosed, a.PeakLiveExtents, a.Compactions, a.CompactedAway)
}
