package metrics

import (
	"strings"
	"testing"
	"time"

	"ibmig/internal/sim"
)

func TestReportPhasesAndTotal(t *testing.T) {
	r := NewReport("x")
	r.Add(PhaseStall, 10*time.Millisecond)
	r.Add(PhaseMigrate, 500*time.Millisecond)
	r.Add(PhaseRestart, 4*time.Second)
	r.Add(PhaseResume, time.Second)
	if r.Phase(PhaseRestart) != 4*time.Second {
		t.Fatalf("restart = %v", r.Phase(PhaseRestart))
	}
	if r.Total() != 5510*time.Millisecond {
		t.Fatalf("total = %v", r.Total())
	}
	// Repeated phases accumulate.
	r.Add(PhaseStall, 5*time.Millisecond)
	if r.Phase(PhaseStall) != 15*time.Millisecond {
		t.Fatalf("accumulated stall = %v", r.Phase(PhaseStall))
	}
}

func TestStopwatchLaps(t *testing.T) {
	r := NewReport("w")
	sw := NewStopwatch(r, sim.Time(100))
	sw.Lap("a", sim.Time(350))
	sw.Lap("b", sim.Time(1000))
	if r.Phase("a") != 250 || r.Phase("b") != 650 {
		t.Fatalf("laps wrong: a=%v b=%v", r.Phase("a"), r.Phase("b"))
	}
}

func TestReportString(t *testing.T) {
	r := NewReport("migration")
	r.Add(PhaseStall, time.Second)
	r.BytesMoved = 170 << 20
	s := r.String()
	for _, want := range []string{"migration", "Job Stall", "170.0 MB"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report string missing %q: %s", want, s)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "longheader"}, [][]string{{"xx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	w := len(lines[0])
	for _, l := range lines[1:] {
		if len(strings.TrimRight(l, " ")) > w {
			t.Fatalf("misaligned table:\n%s", out)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if Seconds(1500*time.Millisecond) != "1.500" {
		t.Fatal("Seconds formatting")
	}
	if MB(10<<20) != "10.0" {
		t.Fatal("MB formatting")
	}
}

func TestReportExtraDeterministicOrder(t *testing.T) {
	r := NewReport("m")
	r.Add(PhaseStall, time.Millisecond)
	r.Extra["retries"] = 2
	r.Extra["aborts"] = 1
	r.Extra["chunks"] = 41
	s := r.String()
	// Extra counters render sorted by key, so the report line is stable
	// across runs regardless of map iteration order.
	want := "aborts=1 | chunks=41 | retries=2"
	if !strings.Contains(s, want) {
		t.Fatalf("extras not in sorted order: %s", s)
	}
	for i := 0; i < 20; i++ {
		if r.String() != s {
			t.Fatal("report string unstable across calls")
		}
	}
}

func TestTableGolden(t *testing.T) {
	got := Table(
		[]string{"app", "migration", "CR"},
		[][]string{
			{"LU.C.64", "170.4", "1363.2"},
			{"BT.C.64", "308.8", "2470.4"},
		},
	)
	want := "" +
		"app      migration  CR\n" +
		"-------  ---------  ------\n" +
		"LU.C.64  170.4      1363.2\n" +
		"BT.C.64  308.8      2470.4\n"
	if got != want {
		t.Fatalf("table format drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTableRaggedRows(t *testing.T) {
	// Rows wider than the header must not panic or misalign the rule.
	out := Table([]string{"a"}, [][]string{{"1", "overflow"}})
	if !strings.Contains(out, "overflow") {
		t.Fatalf("wide cell dropped:\n%s", out)
	}
}

func TestDataPlaneDelta(t *testing.T) {
	before := DataPlane{RegionWrites: 10, LiveExtents: 5, ExtentSplits: 1, ExtentMerges: 0, MaterializedBytes: 100}
	after := DataPlane{RegionWrites: 25, LiveExtents: 3, ExtentSplits: 4, ExtentMerges: 2, MaterializedBytes: 300}
	d := after.Delta(before)
	if d.RegionWrites != 15 || d.ExtentSplits != 3 || d.ExtentMerges != 2 || d.MaterializedBytes != 200 {
		t.Fatalf("delta %+v", d)
	}
	// LiveExtents is a level: its delta may legitimately be negative.
	if d.LiveExtents != -2 {
		t.Fatalf("live-extents delta %d, want -2", d.LiveExtents)
	}
	if !strings.Contains(d.String(), "15 region writes") {
		t.Fatalf("string %s", d.String())
	}
}
