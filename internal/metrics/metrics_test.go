package metrics

import (
	"strings"
	"testing"
	"time"

	"ibmig/internal/sim"
)

func TestReportPhasesAndTotal(t *testing.T) {
	r := NewReport("x")
	r.Add(PhaseStall, 10*time.Millisecond)
	r.Add(PhaseMigrate, 500*time.Millisecond)
	r.Add(PhaseRestart, 4*time.Second)
	r.Add(PhaseResume, time.Second)
	if r.Phase(PhaseRestart) != 4*time.Second {
		t.Fatalf("restart = %v", r.Phase(PhaseRestart))
	}
	if r.Total() != 5510*time.Millisecond {
		t.Fatalf("total = %v", r.Total())
	}
	// Repeated phases accumulate.
	r.Add(PhaseStall, 5*time.Millisecond)
	if r.Phase(PhaseStall) != 15*time.Millisecond {
		t.Fatalf("accumulated stall = %v", r.Phase(PhaseStall))
	}
}

func TestStopwatchLaps(t *testing.T) {
	r := NewReport("w")
	sw := NewStopwatch(r, sim.Time(100))
	sw.Lap("a", sim.Time(350))
	sw.Lap("b", sim.Time(1000))
	if r.Phase("a") != 250 || r.Phase("b") != 650 {
		t.Fatalf("laps wrong: a=%v b=%v", r.Phase("a"), r.Phase("b"))
	}
}

func TestReportString(t *testing.T) {
	r := NewReport("migration")
	r.Add(PhaseStall, time.Second)
	r.BytesMoved = 170 << 20
	s := r.String()
	for _, want := range []string{"migration", "Job Stall", "170.0 MB"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report string missing %q: %s", want, s)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "longheader"}, [][]string{{"xx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	w := len(lines[0])
	for _, l := range lines[1:] {
		if len(strings.TrimRight(l, " ")) > w {
			t.Fatalf("misaligned table:\n%s", out)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if Seconds(1500*time.Millisecond) != "1.500" {
		t.Fatal("Seconds formatting")
	}
	if MB(10<<20) != "10.0" {
		t.Fatal("MB formatting")
	}
}
