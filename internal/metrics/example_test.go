package metrics_test

import (
	"fmt"
	"time"

	"ibmig/internal/metrics"
)

// A migration's phase decomposition renders as a compact report line.
func ExampleReport() {
	r := metrics.NewReport("migration node03->spare01")
	r.Add(metrics.PhaseStall, 11*time.Millisecond)
	r.Add(metrics.PhaseMigrate, 214*time.Millisecond)
	r.Add(metrics.PhaseRestart, 5069*time.Millisecond)
	r.Add(metrics.PhaseResume, 770*time.Millisecond)
	r.BytesMoved = 170 << 20
	fmt.Println(r)
	// Output:
	// migration node03->spare01: total 6.064s | Job Stall 0.011s | Migration 0.214s | Restart 5.069s | Resume 0.770s | moved 170.0 MB
}

func ExampleTable() {
	fmt.Print(metrics.Table(
		[]string{"app", "migration", "CR"},
		[][]string{{"LU.C.64", "170.4", "1363.2"}, {"BT.C.64", "308.8", "2470.4"}},
	))
	// Output:
	// app      migration  CR
	// -------  ---------  ------
	// LU.C.64  170.4      1363.2
	// BT.C.64  308.8      2470.4
}
