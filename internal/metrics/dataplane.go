package metrics

import (
	"fmt"

	"ibmig/internal/mem"
	"ibmig/internal/payload"
)

// DataPlane is a snapshot of the zero-copy data-plane counters: how many
// region writes ran, how many extent descriptors are live, how much splicing
// happened, and — the invariant the whole design rests on — how few bytes
// were ever materialized. Counters are process-wide and host-side only; they
// never influence simulated results. Capture one before and one after a run
// and subtract to attribute activity to the run.
type DataPlane struct {
	RegionWrites      uint64 // mem.Region.Write calls
	LiveExtents       int64  // extent-tree descriptors currently allocated
	ExtentSplits      uint64 // extents cut in place by range splices
	ExtentMerges      uint64 // extents coalesced at splice seams
	MaterializedBytes uint64 // real bytes produced by payload Materialize
}

// CaptureDataPlane snapshots the current counter values.
func CaptureDataPlane() DataPlane {
	s := payload.DataPlaneSnapshot()
	return DataPlane{
		RegionWrites:      mem.RegionWrites(),
		LiveExtents:       s.LiveExtents,
		ExtentSplits:      s.ExtentSplits,
		ExtentMerges:      s.ExtentMerges,
		MaterializedBytes: s.MaterializedBytes,
	}
}

// Delta returns the activity between the since snapshot and this one.
// LiveExtents is a level, not a flow: its delta is the net change and may be
// negative.
func (d DataPlane) Delta(since DataPlane) DataPlane {
	return DataPlane{
		RegionWrites:      d.RegionWrites - since.RegionWrites,
		LiveExtents:       d.LiveExtents - since.LiveExtents,
		ExtentSplits:      d.ExtentSplits - since.ExtentSplits,
		ExtentMerges:      d.ExtentMerges - since.ExtentMerges,
		MaterializedBytes: d.MaterializedBytes - since.MaterializedBytes,
	}
}

func (d DataPlane) String() string {
	return fmt.Sprintf(
		"data plane: %d region writes | %d live extents | %d splits | %d merges | %d bytes materialized",
		d.RegionWrites, d.LiveExtents, d.ExtentSplits, d.ExtentMerges, d.MaterializedBytes)
}
