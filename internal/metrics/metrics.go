// Package metrics provides the phase-decomposed timing reports and table
// formatting used to regenerate the paper's figures and tables.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"ibmig/internal/sim"
)

// Phase names used throughout the evaluation (paper section III-A / IV).
const (
	PhaseStall   = "Job Stall"
	PhaseMigrate = "Migration" // "Checkpoint" for the CR baseline
	PhaseRestart = "Restart"
	PhaseResume  = "Resume"
	PhaseCkpt    = "Checkpoint"
)

// Report is a phase-decomposed timing of one fault-tolerance action.
type Report struct {
	Label  string
	Phases []PhaseSpan
	// BytesMoved is the process-image data volume handled (Table I).
	BytesMoved int64
	// Extra carries strategy-specific counters (chunks, verification, ...).
	Extra map[string]int64
}

// PhaseSpan is one named interval.
type PhaseSpan struct {
	Name     string
	Duration sim.Duration
}

// NewReport creates an empty report.
func NewReport(label string) *Report {
	return &Report{Label: label, Extra: make(map[string]int64)}
}

// Add appends a phase span.
func (r *Report) Add(name string, d sim.Duration) {
	r.Phases = append(r.Phases, PhaseSpan{Name: name, Duration: d})
}

// Phase returns the total duration recorded under name.
func (r *Report) Phase(name string) sim.Duration {
	var d sim.Duration
	for _, p := range r.Phases {
		if p.Name == name {
			d += p.Duration
		}
	}
	return d
}

// Total returns the sum of all phases.
func (r *Report) Total() sim.Duration {
	var d sim.Duration
	for _, p := range r.Phases {
		d += p.Duration
	}
	return d
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: total %.3fs", r.Label, r.Total().Seconds())
	for _, p := range r.Phases {
		fmt.Fprintf(&b, " | %s %.3fs", p.Name, p.Duration.Seconds())
	}
	if r.BytesMoved > 0 {
		fmt.Fprintf(&b, " | moved %.1f MB", float64(r.BytesMoved)/(1<<20))
	}
	if len(r.Extra) > 0 {
		keys := make([]string, 0, len(r.Extra))
		for k := range r.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " | %s=%d", k, r.Extra[k])
		}
	}
	return b.String()
}

// Stopwatch captures named spans against the virtual clock.
type Stopwatch struct {
	last sim.Time
	r    *Report
}

// NewStopwatch starts a stopwatch feeding the report, anchored at now.
func NewStopwatch(r *Report, now sim.Time) *Stopwatch {
	return &Stopwatch{last: now, r: r}
}

// Lap records the time since the previous lap under the given phase name.
func (s *Stopwatch) Lap(name string, now sim.Time) {
	s.r.Add(name, now.Sub(s.last))
	s.last = now
}

// Table renders rows of columns as an aligned text table.
func Table(headers []string, rows [][]string) string {
	width := make([]int, len(headers))
	for i, h := range headers {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		var row strings.Builder
		for i, cell := range cells {
			if i > 0 {
				row.WriteString("  ")
			}
			w := len(cell)
			if i < len(width) {
				w = width[i]
			}
			fmt.Fprintf(&row, "%-*s", w, cell)
		}
		b.WriteString(strings.TrimRight(row.String(), " "))
		b.WriteByte('\n')
	}
	writeRow(headers)
	var rule []string
	for _, w := range width {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Seconds formats a duration as seconds with millisecond resolution.
func Seconds(d sim.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// MB formats a byte count in binary megabytes with one decimal.
func MB(n int64) string { return fmt.Sprintf("%.1f", float64(n)/(1<<20)) }
