package health

import (
	"testing"
	"time"

	"ibmig/internal/sim"
)

// flapSensor returns a sensor that sits at warn level during each listed
// window and is healthy otherwise — a scripted flap, one excursion (and so
// one edge-triggered warning) per window.
func flapSensor(name string, windows [][2]sim.Time) *Sensor {
	return &Sensor{
		Name: name, Warn: 10, Crit: 1000,
		Series: func(t sim.Time) float64 {
			for _, w := range windows {
				if t >= w[0] && t < w[1] {
					return 20
				}
			}
			return 1
		},
	}
}

func win(startMS, endMS int) [2]sim.Time {
	return [2]sim.Time{
		sim.Time(time.Duration(startMS) * time.Millisecond),
		sim.Time(time.Duration(endMS) * time.Millisecond),
	}
}

func TestFlappingSensorBelowThresholdStaysSilent(t *testing.T) {
	// Two warn excursions against a threshold of three: the flap must not
	// produce a failure prediction, however long the run continues.
	e, bp, nodes := backplane(3)
	NewMonitor(e, bp, nodes[1], 100*time.Millisecond, []*Sensor{
		flapSensor("ecc", [][2]sim.Time{win(1000, 1200), win(3000, 3200)}),
	})
	pred := NewPredictor(e, bp, nodes[0], 3)
	if err := e.RunUntil(sim.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if node, ok := pred.Predictions.TryRecv(); ok {
		t.Fatalf("2-flap sensor predicted failure for %s with threshold 3", node)
	}
	if pred.warns[nodes[1]] != 2 {
		t.Fatalf("warn count = %d, want 2", pred.warns[nodes[1]])
	}
	e.Shutdown()
}

func TestFlappingSensorAtThresholdPredicts(t *testing.T) {
	// The third excursion crosses the threshold: exactly one prediction,
	// regardless of further flapping afterwards.
	e, bp, nodes := backplane(3)
	NewMonitor(e, bp, nodes[1], 100*time.Millisecond, []*Sensor{
		flapSensor("ecc", [][2]sim.Time{win(1000, 1200), win(2000, 2200), win(3000, 3200), win(4000, 4200)}),
	})
	pred := NewPredictor(e, bp, nodes[0], 3)
	if err := e.RunUntil(sim.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if node, ok := pred.Predictions.TryRecv(); !ok || node != nodes[1] {
		t.Fatalf("prediction = %q ok=%v, want %s after third flap", node, ok, nodes[1])
	}
	if _, again := pred.Predictions.TryRecv(); again {
		t.Fatal("flapping after the prediction produced a duplicate")
	}
	e.Shutdown()
}

func TestFlapWarningsCountPerNode(t *testing.T) {
	// Two nodes flapping twice each is four warnings total but two per node:
	// below the threshold, so neither is predicted — warning counts must not
	// bleed across nodes.
	e, bp, nodes := backplane(4)
	for _, n := range []string{nodes[1], nodes[2]} {
		NewMonitor(e, bp, n, 100*time.Millisecond, []*Sensor{
			flapSensor("ecc", [][2]sim.Time{win(1000, 1200), win(3000, 3200)}),
		})
	}
	pred := NewPredictor(e, bp, nodes[0], 3)
	if err := e.RunUntil(sim.Time(8 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if node, ok := pred.Predictions.TryRecv(); ok {
		t.Fatalf("cross-node warning bleed predicted %s", node)
	}
	e.Shutdown()
}

func TestRecoveredSensorStillPredictsOnCritical(t *testing.T) {
	// A sensor that flaps once, recovers, then jumps straight to critical:
	// the critical crossing must predict immediately, ignoring the warn
	// count.
	e, bp, nodes := backplane(3)
	s := &Sensor{
		Name: "cpu-temp", Warn: 85, Crit: 95,
		Series: func(tm sim.Time) float64 {
			switch {
			case tm >= sim.Time(1*time.Second) && tm < sim.Time(1200*time.Millisecond):
				return 90 // one warn excursion
			case tm >= sim.Time(3*time.Second):
				return 99 // critical
			}
			return 60
		},
	}
	NewMonitor(e, bp, nodes[1], 100*time.Millisecond, []*Sensor{s})
	pred := NewPredictor(e, bp, nodes[0], 3)
	if err := e.RunUntil(sim.Time(6 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if node, ok := pred.Predictions.TryRecv(); !ok || node != nodes[1] {
		t.Fatalf("prediction = %q ok=%v, want %s on critical", node, ok, nodes[1])
	}
	e.Shutdown()
}

func TestWarnToCriticalEscalationSingleExcursion(t *testing.T) {
	// A monotone deterioration passes warn, then crit, within one excursion:
	// the monitor publishes one warn and one crit (two edges), and the
	// predictor fires exactly once.
	e, bp, nodes := backplane(3)
	NewMonitor(e, bp, nodes[1], 100*time.Millisecond, []*Sensor{
		RampSensor("cpu-temp", 85, 95, 60, sim.Time(time.Second), 30),
	})
	sub := bp.Connect(nodes[2], "obs").Subscribe(NamespaceIPMI, "")
	pred := NewPredictor(e, bp, nodes[0], 3)
	if err := e.RunUntil(sim.Time(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if sub.Pending() != 2 {
		t.Fatalf("IPMI events = %d, want 2 (warn edge + crit edge)", sub.Pending())
	}
	if node, ok := pred.Predictions.TryRecv(); !ok || node != nodes[1] {
		t.Fatalf("prediction = %q ok=%v, want %s", node, ok, nodes[1])
	}
	if _, again := pred.Predictions.TryRecv(); again {
		t.Fatal("duplicate prediction on warn->crit escalation")
	}
	e.Shutdown()
}
