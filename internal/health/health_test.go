package health

import (
	"fmt"
	"testing"
	"time"

	"ibmig/internal/ftb"
	"ibmig/internal/gige"
	"ibmig/internal/sim"
)

func backplane(n int) (*sim.Engine, *ftb.Backplane, []string) {
	e := sim.NewEngine(5)
	net := gige.NewNetwork(e, gige.Config{})
	var nodes []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%02d", i)
		net.Attach(name)
		nodes = append(nodes, name)
	}
	return e, ftb.Deploy(e, net, nodes, 2), nodes
}

func TestCriticalSensorPredictsFailure(t *testing.T) {
	e, bp, nodes := backplane(4)
	NewMonitor(e, bp, nodes[2], 100*time.Millisecond, []*Sensor{
		RampSensor("cpu-temp", 85, 95, 60, sim.Time(time.Second), 20),
	})
	pred := NewPredictor(e, bp, nodes[0], 3)
	if err := e.RunUntil(sim.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	node, ok := pred.Predictions.TryRecv()
	if !ok || node != nodes[2] {
		t.Fatalf("prediction = %q ok=%v, want %s", node, ok, nodes[2])
	}
	// Exactly one prediction per node, even though the sensor stays critical.
	if _, again := pred.Predictions.TryRecv(); again {
		t.Fatal("duplicate prediction")
	}
	e.Shutdown()
}

func TestRepeatedWarningsPredictFailure(t *testing.T) {
	e, bp, nodes := backplane(3)
	// Value oscillates across the warn threshold, generating repeated
	// edge-triggered warnings but never reaching critical.
	osc := &Sensor{
		Name: "ecc", Warn: 10, Crit: 1000,
		Series: func(tm sim.Time) float64 {
			if (tm/sim.Time(500*time.Millisecond))%2 == 0 {
				return 5
			}
			return 20
		},
	}
	NewMonitor(e, bp, nodes[1], 100*time.Millisecond, []*Sensor{osc})
	pred := NewPredictor(e, bp, nodes[0], 3)
	if err := e.RunUntil(sim.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if node, ok := pred.Predictions.TryRecv(); !ok || node != nodes[1] {
		t.Fatalf("no prediction after repeated warnings (got %q, %v)", node, ok)
	}
	e.Shutdown()
}

func TestHealthySensorsStaySilent(t *testing.T) {
	e, bp, nodes := backplane(3)
	for _, n := range nodes {
		NewMonitor(e, bp, n, 100*time.Millisecond, []*Sensor{
			SteadySensor("cpu-temp", 85, 95, 55),
			SteadySensor("fan", 100, 200, 40),
		})
	}
	pred := NewPredictor(e, bp, nodes[0], 3)
	if err := e.RunUntil(sim.Time(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if node, ok := pred.Predictions.TryRecv(); ok {
		t.Fatalf("spurious prediction for %s", node)
	}
	if bp.Published != 0 {
		t.Fatalf("healthy cluster published %d events", bp.Published)
	}
	e.Shutdown()
}

func TestEdgeTriggeredEvents(t *testing.T) {
	e, bp, nodes := backplane(2)
	// A sensor stuck above warn publishes exactly one event.
	NewMonitor(e, bp, nodes[1], 100*time.Millisecond, []*Sensor{
		SteadySensor("cpu-temp", 85, 95, 90),
	})
	sub := bp.Connect(nodes[0], "obs").Subscribe(NamespaceIPMI, "")
	if err := e.RunUntil(sim.Time(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if sub.Pending() != 1 {
		t.Fatalf("events = %d, want 1 (edge-triggered)", sub.Pending())
	}
	e.Shutdown()
}
