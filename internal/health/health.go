// Package health models the node-health side of proactive fault tolerance:
// IPMI-style sensors polled on each node and a threshold predictor that turns
// sensor excursions into failure predictions on the FTB — the event source
// the paper cites ("a migration can be triggered by an abnormal event of
// system health status such as reported by IPMI or other failure prediction
// models").
package health

import (
	"fmt"

	"ibmig/internal/ftb"
	"ibmig/internal/sim"
)

// Event namespaces and names.
const (
	NamespaceIPMI = "ftb.ipmi"
	NamespacePred = "ftb.predictor"

	EventSensorWarn       = "SENSOR_WARN"
	EventSensorCritical   = "SENSOR_CRIT"
	EventFailurePredicted = "NODE_FAILURE_PREDICTED"
)

// SensorReading is the payload of sensor events.
type SensorReading struct {
	Node   string
	Sensor string
	Value  float64
}

// Sensor is one monitored quantity with warning and critical thresholds. The
// Series function gives the sensor value as a function of virtual time, so
// tests and examples can script deteriorations deterministically.
type Sensor struct {
	Name   string
	Warn   float64
	Crit   float64
	Series func(t sim.Time) float64
}

// Monitor polls a node's sensors and publishes threshold crossings on the
// FTB. Crossings are edge-triggered: one event per excursion.
type Monitor struct {
	node     string
	client   *ftb.Client
	sensors  []*Sensor
	interval sim.Duration
	level    map[string]int // 0 ok, 1 warn, 2 crit
}

// NewMonitor starts a monitor for node, polling at the given interval.
func NewMonitor(e *sim.Engine, bp *ftb.Backplane, node string, interval sim.Duration, sensors []*Sensor) *Monitor {
	m := &Monitor{
		node:     node,
		client:   bp.Connect(node, "ipmi@"+node),
		sensors:  sensors,
		interval: interval,
		level:    make(map[string]int),
	}
	e.Spawn("health.monitor."+node, m.loop)
	return m
}

func (m *Monitor) loop(p *sim.Proc) {
	for {
		p.Sleep(m.interval)
		for _, s := range m.sensors {
			v := s.Series(p.Now())
			lvl := 0
			switch {
			case v >= s.Crit:
				lvl = 2
			case v >= s.Warn:
				lvl = 1
			}
			if lvl == m.level[s.Name] {
				continue
			}
			m.level[s.Name] = lvl
			name := ""
			switch lvl {
			case 1:
				name = EventSensorWarn
			case 2:
				name = EventSensorCritical
			default:
				continue // recovered; no event in this simple model
			}
			m.client.Publish(p, ftb.Event{
				Namespace: NamespaceIPMI,
				Name:      name,
				Severity:  name,
				Payload:   SensorReading{Node: m.node, Sensor: s.Name, Value: v},
			})
		}
	}
}

// Predictor turns IPMI events into failure predictions: any critical
// crossing, or warnThreshold warnings from the same node, predicts that the
// node will fail. Predictions are published once per node.
type Predictor struct {
	client        *ftb.Client
	warnThreshold int
	warns         map[string]int
	predicted     map[string]bool

	// Predictions streams the names of nodes predicted to fail (for
	// consumers that prefer a queue over an FTB subscription).
	Predictions *sim.Queue[string]
}

// NewPredictor starts a predictor on the given node (typically the login
// node).
func NewPredictor(e *sim.Engine, bp *ftb.Backplane, node string, warnThreshold int) *Predictor {
	if warnThreshold <= 0 {
		warnThreshold = 3
	}
	pr := &Predictor{
		client:        bp.Connect(node, "predictor"),
		warnThreshold: warnThreshold,
		warns:         make(map[string]int),
		predicted:     make(map[string]bool),
		Predictions:   sim.NewQueue[string](e, "health.predictions", 0),
	}
	sub := pr.client.Subscribe(NamespaceIPMI, "")
	e.Spawn("health.predictor", func(p *sim.Proc) {
		for {
			ev, ok := sub.Recv(p)
			if !ok {
				return
			}
			r, isReading := ev.Payload.(SensorReading)
			if !isReading || pr.predicted[r.Node] {
				continue
			}
			fail := false
			if ev.Name == EventSensorCritical {
				fail = true
			} else if ev.Name == EventSensorWarn {
				pr.warns[r.Node]++
				fail = pr.warns[r.Node] >= pr.warnThreshold
			}
			if !fail {
				continue
			}
			pr.predicted[r.Node] = true
			pr.client.Publish(p, ftb.Event{
				Namespace: NamespacePred,
				Name:      EventFailurePredicted,
				Severity:  "CRITICAL",
				Payload:   r.Node,
			})
			pr.Predictions.TrySend(r.Node)
			p.Trace("health.predict", fmt.Sprintf("node %s predicted to fail (%s=%.1f)", r.Node, r.Sensor, r.Value))
		}
	})
	return pr
}

// RampSensor returns a sensor whose value ramps linearly from base, starting
// at startAt, by slopePerSec — a scripted deterioration.
func RampSensor(name string, warn, crit, base float64, startAt sim.Time, slopePerSec float64) *Sensor {
	return &Sensor{
		Name: name,
		Warn: warn,
		Crit: crit,
		Series: func(t sim.Time) float64 {
			if t <= startAt {
				return base
			}
			return base + (t-startAt).Seconds()*slopePerSec
		},
	}
}

// SteadySensor returns a sensor pinned at a healthy value.
func SteadySensor(name string, warn, crit, value float64) *Sensor {
	return &Sensor{Name: name, Warn: warn, Crit: crit, Series: func(sim.Time) float64 { return value }}
}
