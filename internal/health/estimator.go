package health

// RateEstimator is a Bayesian failure-rate estimator: a Gamma(α, β) prior
// over the per-node-hour failure rate, updated by observed failure counts
// against node-hour exposure. The posterior mean (α+n)/(β+exposure) blends
// the prior MTBF with the observed rate, so a young fleet starts from the
// vendor number and an old one trusts its own history — the fleet spare-pool
// autoscaler retargets from it.
type RateEstimator struct {
	alpha float64 // prior pseudo-failures
	beta  float64 // prior pseudo-exposure (node-hours)
	n     int     // observed failures
}

// NewRateEstimator builds an estimator around a prior rate (failures per
// node-hour) with the given weight in pseudo-failures: the prior carries as
// much evidence as `weight` real failures would.
func NewRateEstimator(priorPerNodeHour, weight float64) *RateEstimator {
	if priorPerNodeHour <= 0 {
		priorPerNodeHour = 1.0 / (6 * 24) // one per node per six days
	}
	if weight <= 0 {
		weight = 1
	}
	return &RateEstimator{alpha: weight, beta: weight / priorPerNodeHour}
}

// Observe records one failure.
func (e *RateEstimator) Observe() { e.n++ }

// Count returns the number of observed failures.
func (e *RateEstimator) Count() int { return e.n }

// Rate returns the posterior mean failure rate (failures per node-hour)
// given the exposure accumulated so far, in node-hours.
func (e *RateEstimator) Rate(exposureNodeHours float64) float64 {
	if exposureNodeHours < 0 {
		exposureNodeHours = 0
	}
	return (e.alpha + float64(e.n)) / (e.beta + exposureNodeHours)
}
