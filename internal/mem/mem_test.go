package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ibmig/internal/payload"
)

func TestRegionInitialContentDeterministic(t *testing.T) {
	a := NewRegion(4096, 5)
	b := NewRegion(4096, 5)
	c := NewRegion(4096, 6)
	if a.Checksum() != b.Checksum() {
		t.Fatal("same seed produced different initial content")
	}
	if a.Checksum() == c.Checksum() {
		t.Fatal("different seeds produced identical content")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := NewRegion(1<<16, 1)
	data := payload.Synth(9, 0, 1000)
	r.Write(500, data)
	if !r.Read(500, 1000).Equal(data) {
		t.Fatal("read-back mismatch")
	}
	// Adjacent content untouched.
	fresh := NewRegion(1<<16, 1)
	if !r.Read(0, 500).Equal(fresh.Read(0, 500)) {
		t.Fatal("write disturbed preceding bytes")
	}
	if !r.Read(1500, 1000).Equal(fresh.Read(1500, 1000)) {
		t.Fatal("write disturbed following bytes")
	}
}

func TestGenerationCounts(t *testing.T) {
	r := NewRegion(100, 1)
	if r.Generation() != 0 {
		t.Fatal("fresh region has nonzero generation")
	}
	r.Write(0, payload.Synth(1, 0, 10))
	r.Write(50, payload.Synth(2, 0, 10))
	if r.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", r.Generation())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	r := NewRegion(100, 1)
	for _, fn := range []func(){
		func() { r.Write(95, payload.Synth(1, 0, 10)) },
		func() { r.Read(95, 10) },
		func() { r.Write(-1, payload.Synth(1, 0, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNewRegionWith(t *testing.T) {
	content := payload.Synth(3, 7, 5000)
	r := NewRegionWith(content)
	if r.Size() != 5000 || !r.Content().Equal(content) {
		t.Fatal("NewRegionWith mismatch")
	}
}

// TestRegionRandomizedMatchesReference drives a region and a plain byte
// slice through a long randomized write/read/slice sequence — longer arms
// than the quick-check property below, including real-byte writes and
// interior reads after every step.
func TestRegionRandomizedMatchesReference(t *testing.T) {
	const size = 1 << 16
	rng := rand.New(rand.NewSource(21))
	r := NewRegion(size, 42)
	ref := r.Content().Materialize()
	for step := 0; step < 500; step++ {
		off := rng.Int63n(size)
		n := rng.Int63n(size-off) + 1
		var data payload.Buffer
		if rng.Intn(2) == 0 {
			data = payload.Synth(uint64(rng.Intn(6))+1, rng.Int63n(1<<20), n)
		} else {
			data = payload.FromBytes(payload.Synth(uint64(step)+50, 0, n).Materialize())
		}
		r.Write(off, data)
		copy(ref[off:off+n], data.Materialize())

		ro := rng.Int63n(size)
		rn := rng.Int63n(size - ro + 1)
		if got := r.Read(ro, rn).Materialize(); !bytes.Equal(got, ref[ro:ro+rn]) {
			t.Fatalf("step %d: read(%d,%d) diverged", step, ro, rn)
		}
	}
	if !bytes.Equal(r.Content().Materialize(), ref) {
		t.Fatal("final content diverged")
	}
	if r.Checksum() != payload.FromBytes(ref).Checksum() {
		t.Fatal("final checksum diverged")
	}
}

// TestRegionExtentsBoundedUnderChurn models an aggregation buffer pool at
// steady state: chunk-aligned overwrites arriving forever. The extent count
// must stay bounded by the chunk layout, not grow with write count — the
// invariant that keeps pool regions O(chunks) descriptors for the lifetime
// of a migration.
func TestRegionExtentsBoundedUnderChurn(t *testing.T) {
	const size, chunk = 10 << 20, 1 << 20 // the paper's 10 MB pool, 1 MB chunks
	r := NewRegion(size, 1)
	rng := rand.New(rand.NewSource(9))
	bound := int(size/chunk) + 2
	for round := 0; round < 200; round++ {
		c := rng.Int63n(size / chunk)
		r.Write(c*chunk, payload.Synth(uint64(rng.Intn(16))+2, rng.Int63n(1<<30), chunk))
		if got := r.Extents(); got > bound {
			t.Fatalf("round %d: %d extents > bound %d", round, got, bound)
		}
	}
	// Full overwrite collapses back to one extent regardless of history.
	r.Write(0, payload.Synth(99, 0, size))
	if got := r.Extents(); got != 1 {
		t.Fatalf("full overwrite left %d extents, want 1", got)
	}
}

// BenchmarkRegionWriteChurn measures the steady-state overwrite path: ns/op
// and allocs/op must stay flat however long the churn runs (descriptor
// splicing, no content rebuild).
func BenchmarkRegionWriteChurn(b *testing.B) {
	const size, chunk = 64 << 20, 1 << 16
	r := NewRegion(size, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%(size/chunk)) * chunk
		r.Write(off, payload.Synth(uint64(i)+2, off, chunk))
	}
}

// Property: a region behaves like a reference byte slice under any sequence
// of writes.
func TestQuickRegionMatchesReference(t *testing.T) {
	f := func(ops []struct {
		Off  uint16
		N    uint8
		Seed uint64
	}) bool {
		const size = 8192
		if len(ops) > 25 {
			ops = ops[:25]
		}
		r := NewRegion(size, 42)
		ref := r.Content().Materialize()
		for _, op := range ops {
			off := int64(op.Off) % size
			n := int64(op.N)%(size-off) + 1
			if off+n > size {
				n = size - off
			}
			data := payload.Synth(op.Seed, 0, n)
			r.Write(off, data)
			copy(ref[off:off+n], data.Materialize())
		}
		return bytes.Equal(r.Content().Materialize(), ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
