package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"ibmig/internal/payload"
)

func TestRegionInitialContentDeterministic(t *testing.T) {
	a := NewRegion(4096, 5)
	b := NewRegion(4096, 5)
	c := NewRegion(4096, 6)
	if a.Checksum() != b.Checksum() {
		t.Fatal("same seed produced different initial content")
	}
	if a.Checksum() == c.Checksum() {
		t.Fatal("different seeds produced identical content")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := NewRegion(1<<16, 1)
	data := payload.Synth(9, 0, 1000)
	r.Write(500, data)
	if !r.Read(500, 1000).Equal(data) {
		t.Fatal("read-back mismatch")
	}
	// Adjacent content untouched.
	fresh := NewRegion(1<<16, 1)
	if !r.Read(0, 500).Equal(fresh.Read(0, 500)) {
		t.Fatal("write disturbed preceding bytes")
	}
	if !r.Read(1500, 1000).Equal(fresh.Read(1500, 1000)) {
		t.Fatal("write disturbed following bytes")
	}
}

func TestGenerationCounts(t *testing.T) {
	r := NewRegion(100, 1)
	if r.Generation() != 0 {
		t.Fatal("fresh region has nonzero generation")
	}
	r.Write(0, payload.Synth(1, 0, 10))
	r.Write(50, payload.Synth(2, 0, 10))
	if r.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", r.Generation())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	r := NewRegion(100, 1)
	for _, fn := range []func(){
		func() { r.Write(95, payload.Synth(1, 0, 10)) },
		func() { r.Read(95, 10) },
		func() { r.Write(-1, payload.Synth(1, 0, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNewRegionWith(t *testing.T) {
	content := payload.Synth(3, 7, 5000)
	r := NewRegionWith(content)
	if r.Size() != 5000 || !r.Content().Equal(content) {
		t.Fatal("NewRegionWith mismatch")
	}
}

// Property: a region behaves like a reference byte slice under any sequence
// of writes.
func TestQuickRegionMatchesReference(t *testing.T) {
	f := func(ops []struct {
		Off  uint16
		N    uint8
		Seed uint64
	}) bool {
		const size = 8192
		if len(ops) > 25 {
			ops = ops[:25]
		}
		r := NewRegion(size, 42)
		ref := r.Content().Materialize()
		for _, op := range ops {
			off := int64(op.Off) % size
			n := int64(op.N)%(size-off) + 1
			if off+n > size {
				n = size - off
			}
			data := payload.Synth(op.Seed, 0, n)
			r.Write(off, data)
			copy(ref[off:off+n], data.Materialize())
		}
		return bytes.Equal(r.Content().Materialize(), ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
