// Package mem provides mutable simulated memory regions backed by
// payload extent trees, used for RDMA-registered buffers and process-image
// segments.
package mem

import (
	"fmt"
	"sync/atomic"

	"ibmig/internal/payload"
)

// regionWrites counts Region.Write calls process-wide — part of the
// data-plane telemetry surfaced by internal/metrics. Host-side only; never
// influences simulated behaviour.
var regionWrites atomic.Uint64

// RegionWrites returns the process-wide Region.Write count.
func RegionWrites() uint64 { return regionWrites.Load() }

// Region is a fixed-size, byte-addressable simulated memory area. Its
// content is a coalescing extent tree over payload parts, so it can mix real
// and synthetic bytes, a write splices descriptors in O(log extents) instead
// of rebuilding the content, and the extent count stays bounded under
// sustained overwrite churn (see payload.Tree). The zero value is not
// usable; call NewRegion.
type Region struct {
	size int64
	t    payload.Tree
	// writes counts Write calls, a cheap generation number for cache logic.
	writes int64
}

// NewRegion returns a region of the given size. Initial content is a
// deterministic synthetic fill derived from seed (simulated uninitialized
// memory: stable, but not meaningful) — a single extent.
func NewRegion(size int64, seed uint64) *Region {
	if size < 0 {
		panic("mem: negative region size")
	}
	r := &Region{size: size}
	r.t.Splice(0, 0, payload.Synth(seed, 0, size))
	return r
}

// NewRegionWith returns a region initialized with exactly the given content.
func NewRegionWith(b payload.Buffer) *Region {
	r := &Region{size: b.Size()}
	r.t.Splice(0, 0, b)
	return r
}

// Size returns the region size in bytes.
func (r *Region) Size() int64 { return r.size }

// Generation returns a counter incremented on every Write.
func (r *Region) Generation() int64 { return r.writes }

// Extents returns the number of extent descriptors backing the region.
func (r *Region) Extents() int { return r.t.Extents() }

// Write replaces the byte range [off, off+b.Size()) with b's content by
// splicing extent descriptors — no content is copied or materialized.
func (r *Region) Write(off int64, b payload.Buffer) {
	n := b.Size()
	if off < 0 || off+n > r.size {
		panic(fmt.Sprintf("mem: write [%d,%d) beyond region size %d", off, off+n, r.size))
	}
	if n == 0 {
		return
	}
	r.t.Splice(off, n, b)
	r.writes++
	regionWrites.Add(1)
}

// Read returns the content of [off, off+n) without copying.
func (r *Region) Read(off, n int64) payload.Buffer {
	if off < 0 || n < 0 || off+n > r.size {
		panic(fmt.Sprintf("mem: read [%d,%d) beyond region size %d", off, off+n, r.size))
	}
	return r.t.Slice(off, n)
}

// Content returns the whole region content.
func (r *Region) Content() payload.Buffer { return r.t.Buffer() }

// Checksum returns the FNV-1a checksum of the entire region.
func (r *Region) Checksum() uint64 { return r.t.Checksum() }
