// Package mem provides mutable simulated memory regions backed by
// payload extent trees, used for RDMA-registered buffers and process-image
// segments.
package mem

import (
	"fmt"
	"sync/atomic"

	"ibmig/internal/payload"
)

// regionWrites counts Region.Write calls process-wide — part of the
// data-plane telemetry surfaced by internal/metrics. Host-side only; never
// influences simulated behaviour.
var regionWrites atomic.Uint64

// RegionWrites returns the process-wide Region.Write count.
func RegionWrites() uint64 { return regionWrites.Load() }

// Region is a fixed-size, byte-addressable simulated memory area. Its
// content is a coalescing extent tree over payload parts, so it can mix real
// and synthetic bytes, a write splices descriptors in O(log extents) instead
// of rebuilding the content, and the extent count stays bounded under
// sustained overwrite churn (see payload.Tree). The zero value is not
// usable; call NewRegion.
//
// A synthetically-seeded region is lazy: until its first Write no tree node
// exists at all — reads and checksums are answered directly from the seed.
// Regions that are registered but never written (the rendezvous buffers of a
// full mpi mesh, by far the most numerous at sweep scale) therefore hold
// zero live extents.
type Region struct {
	size int64
	t    payload.Tree
	// writes counts Write calls, a cheap generation number for cache logic.
	writes int64
	// seed is the synthetic fill; valid only while !filled.
	seed uint64
	// filled marks that the tree holds the content. False means the content
	// is still exactly Synth(seed, 0, size) and the tree is empty.
	filled bool
}

// compactEvery and compactMinExtents gate the periodic compaction pass: every
// compactEvery-th write to a region fragmented beyond compactMinExtents
// re-coalesces it (see payload.Tree.Compact). Content-neutral, so it can only
// affect host wall time, never simulated results.
const (
	compactEvery      = 256
	compactMinExtents = 64
)

// NewRegion returns a region of the given size. Initial content is a
// deterministic synthetic fill derived from seed (simulated uninitialized
// memory: stable, but not meaningful) — a single extent, instantiated only
// when the region is first written.
func NewRegion(size int64, seed uint64) *Region {
	if size < 0 {
		panic("mem: negative region size")
	}
	return &Region{size: size, seed: seed}
}

// NewRegionWith returns a region initialized with exactly the given content.
func NewRegionWith(b payload.Buffer) *Region {
	r := &Region{size: b.Size(), filled: true}
	r.t.Splice(0, 0, b)
	return r
}

// fill instantiates the synthetic base content ahead of the first write.
func (r *Region) fill() {
	if !r.filled {
		r.t.Splice(0, 0, payload.Synth(r.seed, 0, r.size))
		r.filled = true
	}
}

// Size returns the region size in bytes.
func (r *Region) Size() int64 { return r.size }

// Generation returns a counter incremented on every Write.
func (r *Region) Generation() int64 { return r.writes }

// Extents returns the number of extent descriptors backing the region. A
// never-written region reports its logical single synthetic extent even
// though no node is allocated for it.
func (r *Region) Extents() int {
	if !r.filled {
		if r.size == 0 {
			return 0
		}
		return 1
	}
	return r.t.Extents()
}

// Write replaces the byte range [off, off+b.Size()) with b's content by
// splicing extent descriptors — no content is copied or materialized.
func (r *Region) Write(off int64, b payload.Buffer) {
	n := b.Size()
	if off < 0 || off+n > r.size {
		panic(fmt.Sprintf("mem: write [%d,%d) beyond region size %d", off, off+n, r.size))
	}
	if n == 0 {
		return
	}
	r.fill()
	r.t.Splice(off, n, b)
	r.writes++
	regionWrites.Add(1)
	if r.writes%compactEvery == 0 && r.t.Extents() > compactMinExtents {
		r.t.Compact()
	}
}

// Read returns the content of [off, off+n) without copying.
func (r *Region) Read(off, n int64) payload.Buffer {
	if off < 0 || n < 0 || off+n > r.size {
		panic(fmt.Sprintf("mem: read [%d,%d) beyond region size %d", off, off+n, r.size))
	}
	if !r.filled {
		return payload.Synth(r.seed, off, n)
	}
	return r.t.Slice(off, n)
}

// Content returns the whole region content.
func (r *Region) Content() payload.Buffer {
	if !r.filled {
		return payload.Synth(r.seed, 0, r.size)
	}
	return r.t.Buffer()
}

// Checksum returns the FNV-1a checksum of the entire region.
func (r *Region) Checksum() uint64 {
	if !r.filled {
		return payload.Synth(r.seed, 0, r.size).Checksum()
	}
	return r.t.Checksum()
}

// Compact re-coalesces the region's extent tree (see payload.Tree.Compact)
// and returns the number of extents eliminated.
func (r *Region) Compact() int {
	if !r.filled {
		return 0
	}
	return r.t.Compact()
}

// Release returns the region's extent nodes to the payload arena and resets
// it to its initial synthetic state. Call when the region's lifecycle ends —
// an RDMA buffer deregistered at teardown, a process image segment discarded
// after migration. The region stays usable (content reverts to the seed
// fill), but callers must not hold Buffers sliced from it across a Release
// if poison mode is to give meaningful reports.
func (r *Region) Release() {
	if r.filled {
		r.t.Release()
		r.filled = false
	}
}
