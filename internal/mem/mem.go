// Package mem provides mutable simulated memory regions backed by
// payload.Buffer content, used for RDMA-registered buffers and process-image
// segments.
package mem

import (
	"fmt"

	"ibmig/internal/payload"
)

// Region is a fixed-size, byte-addressable simulated memory area. Its content
// is a payload buffer, so it can mix real and synthetic bytes. The zero value
// is not usable; call NewRegion.
type Region struct {
	size    int64
	content payload.Buffer
	// writes counts Write calls, a cheap generation number for cache logic.
	writes int64
}

// NewRegion returns a region of the given size. Initial content is a
// deterministic synthetic fill derived from seed (simulated uninitialized
// memory: stable, but not meaningful).
func NewRegion(size int64, seed uint64) *Region {
	if size < 0 {
		panic("mem: negative region size")
	}
	return &Region{size: size, content: payload.Synth(seed, 0, size)}
}

// NewRegionWith returns a region initialized with exactly the given content.
func NewRegionWith(b payload.Buffer) *Region {
	return &Region{size: b.Size(), content: b}
}

// Size returns the region size in bytes.
func (r *Region) Size() int64 { return r.size }

// Generation returns a counter incremented on every Write.
func (r *Region) Generation() int64 { return r.writes }

// Write replaces the byte range [off, off+b.Size()) with b's content.
func (r *Region) Write(off int64, b payload.Buffer) {
	n := b.Size()
	if off < 0 || off+n > r.size {
		panic(fmt.Sprintf("mem: write [%d,%d) beyond region size %d", off, off+n, r.size))
	}
	if n == 0 {
		return
	}
	var next payload.Buffer
	next.AppendBuffer(r.content.Slice(0, off))
	next.AppendBuffer(b)
	next.AppendBuffer(r.content.Slice(off+n, r.size-off-n))
	r.content = next
	r.writes++
}

// Read returns the content of [off, off+n) without copying.
func (r *Region) Read(off, n int64) payload.Buffer {
	if off < 0 || n < 0 || off+n > r.size {
		panic(fmt.Sprintf("mem: read [%d,%d) beyond region size %d", off, off+n, r.size))
	}
	return r.content.Slice(off, n)
}

// Content returns the whole region content.
func (r *Region) Content() payload.Buffer { return r.content }

// Checksum returns the FNV-1a checksum of the entire region.
func (r *Region) Checksum() uint64 { return r.content.Checksum() }
