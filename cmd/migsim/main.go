// Command migsim runs one simulated MPI job under the migration framework
// and prints a phase-decomposed report.
//
// Examples:
//
//	migsim -app LU -class C -np 64 -ppn 8                 # the paper's setup
//	migsim -app BT -class W -np 16 -ppn 2 -restart memory # future-work mode
//	migsim -app LU -class W -np 16 -ppn 2 -transport socket
//	migsim -app SP -class C -np 64 -ppn 8 -strategy cr-pvfs
//	migsim -app LU -class S -np 8 -ppn 2 -trace           # watch the protocol
//	migsim -app LU -class W -np 16 -ppn 2 -fault tgt-crash -fault-phase 2
//	migsim -app LU -class W -np 16 -ppn 2 -fault src-crash -verify
//	migsim -app LU -class S -np 32 -partitions 4 -workers 4   # partitioned engine
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ibmig/internal/cluster"
	"ibmig/internal/core"
	"ibmig/internal/cr"
	"ibmig/internal/exp"
	"ibmig/internal/fault"
	"ibmig/internal/ftb"
	"ibmig/internal/metrics"
	"ibmig/internal/npb"
	"ibmig/internal/obs"
	"ibmig/internal/sim"
)

func main() {
	app := flag.String("app", "LU", "application: LU, BT or SP")
	class := flag.String("class", "W", "NPB class: S, W, A, B or C")
	np := flag.Int("np", 16, "number of MPI processes")
	ppn := flag.Int("ppn", 2, "processes per node")
	strategy := flag.String("strategy", "migrate", "fault handling: migrate, cr-ext3 or cr-pvfs")
	restartMode := flag.String("restart", "file", "migration restart mode: file, memory or pipelined")
	transport := flag.String("transport", "rdma", "migration transport: rdma or socket")
	poolMB := flag.Int64("pool", 10, "buffer pool size (MB)")
	chunkKB := flag.Int64("chunk", 1024, "chunk size (KB)")
	triggerFrac := flag.Float64("trigger", 0.33, "trigger point as a fraction of estimated runtime")
	seed := flag.Int64("seed", 1, "simulation seed")
	faultKind := flag.String("fault", "", "inject a fault during the migration: src-crash, tgt-crash, link, disk or drop-restart")
	faultPhase := flag.Int("fault-phase", 2, "migration phase (1-4) the fault lands at")
	verify := flag.Bool("verify", false, "checksum images end to end (slower)")
	trace := flag.Bool("trace", false, "stream framework trace events")
	timeline := flag.Bool("timeline", false, "print the migration's event timeline (the paper's Fig. 2 sequence)")
	obsOn := flag.Bool("obs", false, "collect observability data (spans, metrics, device utilization) and print a summary")
	traceOut := flag.String("trace-out", "", "write a Chrome/Perfetto trace-event JSON file (implies -obs)")
	partitions := flag.Int("partitions", 1, "run the conservative partitioned engine with this many shards (LU only; >1 skips the migration scenario)")
	workers := flag.Int("workers", 1, "worker goroutines for the partitioned engine")
	iters := flag.Int("iters", 0, "partitioned engine: iteration override (0 = full class count)")
	flag.Parse()
	if *traceOut != "" {
		*obsOn = true
	}

	if *partitions > 1 || *workers > 1 {
		runPartitioned(*app, *class, *np, *seed, *partitions, *workers, *iters, *trace)
		return
	}

	w := npb.New(npb.Kernel(*app), npb.Class((*class)[0]), *np)
	if *np%*ppn != 0 {
		fmt.Fprintln(os.Stderr, "np must be a multiple of ppn")
		os.Exit(2)
	}
	opts := core.Options{
		BufferPoolBytes: *poolMB << 20,
		ChunkBytes:      *chunkKB << 10,
		Hash:            *verify,
	}
	switch *restartMode {
	case "memory":
		opts.RestartMode = core.RestartMemory
	case "pipelined":
		opts.RestartMode = core.RestartPipelined
	}
	if *transport == "socket" {
		opts.Transport = core.TransportSocket
	}
	if *faultKind != "" {
		// A dead node stalls a phase until the deadline; keep the wait short.
		opts.PhaseDeadline = 5 * time.Second
	}

	e := sim.NewEngine(*seed)
	var recorder *sim.Recorder
	isFrameworkEvent := func(kind string) bool {
		switch kind {
		case "core.jm", "core.nla", "ftb.publish", "health.predict", "blcr.checkpoint", "blcr.restart":
			return true
		}
		return false
	}
	switch {
	case *trace:
		e.SetTracer(&sim.Writer{W: os.Stderr, Filter: isFrameworkEvent})
	case *timeline:
		recorder = &sim.Recorder{}
		e.SetTracer(recorder)
	}
	spares := 1
	if *faultKind != "" {
		spares = 2 // recovery may burn a spare and retry onto the next
	}
	c := cluster.New(e, cluster.Config{
		ComputeNodes: *np / *ppn,
		SpareNodes:   spares,
		PVFSServers:  4,
	})
	res := npb.NewResult(w.Ranks)
	fw := core.Launch(c, w, *ppn, res, opts)
	var col *obs.Collector
	if *obsOn {
		col = obs.Enable(e)
	}

	src := c.Compute[len(c.Compute)/2].Name
	if *faultKind != "" {
		inj := fault.NewInjector(c)
		inj.Bind(fw)
		var sp fault.Spec
		switch *faultKind {
		case "src-crash":
			sp = fault.Spec{Kind: fault.NodeCrash, Node: src}
		case "tgt-crash":
			sp = fault.Spec{Kind: fault.NodeCrash, Node: c.Spares[0].Name}
		case "link":
			sp = fault.Spec{Kind: fault.HCAFail, Node: c.Spares[0].Name}
		case "disk":
			sp = fault.Spec{Kind: fault.DiskFail, Node: c.Spares[0].Name}
		case "drop-restart":
			sp = fault.Spec{Kind: fault.FTBDrop, Event: ftb.EventRestart}
		default:
			fmt.Fprintf(os.Stderr, "unknown fault %q\n", *faultKind)
			os.Exit(2)
		}
		inj.AtPhase(0, *faultPhase, sp)
		fmt.Printf("armed fault %v at migration phase %d\n", sp, *faultPhase)
	}

	fmt.Printf("%s: %d ranks on %d nodes (%d/node), est. runtime %.1fs, image %s MB/rank\n",
		w.Name(), w.Ranks, *np / *ppn, *ppn, w.EstimatedRuntime().Seconds(), metrics.MB(w.PerRankImage))

	dpStart := metrics.CaptureDataPlane()
	var report *metrics.Report
	var appDur sim.Duration
	e.Spawn("migsim", func(p *sim.Proc) {
		fw.W.WaitReady(p)
		start := p.Now()
		if *faultKind != "" {
			// The recovery image the CR-fallback path restores from if the
			// injected fault defeats the migration itself.
			if _, err := fw.Checkpoint(p, cr.PVFS); err != nil {
				fmt.Fprintln(os.Stderr, "pre-fault checkpoint:", err)
				os.Exit(1)
			}
			fmt.Printf("full-job checkpoint taken at t=%.1fs\n", p.Now().Seconds())
		}
		p.Sleep(sim.Duration(float64(w.EstimatedRuntime()) * *triggerFrac))
		switch *strategy {
		case "migrate":
			fmt.Printf("triggering migration of %s at t=%.1fs\n", src, p.Now().Seconds())
			fw.TriggerMigration(p, src).Wait(p)
			if len(fw.Reports) > 0 {
				report = fw.Reports[len(fw.Reports)-1]
			}
		case "cr-ext3":
			report = cr.NewRunner(c, fw.W, cr.Ext3, *verify).FullCycle(p)
		case "cr-pvfs":
			report = cr.NewRunner(c, fw.W, cr.PVFS, *verify).FullCycle(p)
		default:
			fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
			os.Exit(2)
		}
		fw.W.WaitDone(p)
		appDur = p.Now().Sub(start)
		e.Stop()
	})
	if err := e.Run(); err != nil {
		e.Shutdown() // flush tracers; the collected observability data is still valid
		dumpObs(col, e.Now(), *traceOut)
		fmt.Fprintln(os.Stderr, "simulation failed:", err)
		os.Exit(1)
	}
	e.Shutdown()
	dumpObs(col, e.Now(), *traceOut)

	if report == nil {
		fmt.Println("no fault-tolerance action completed")
		os.Exit(1)
	}
	if recorder != nil {
		fmt.Println("\nMigration timeline (paper Fig. 2):")
		for _, rec := range recorder.Records {
			if isFrameworkEvent(rec.Kind) {
				fmt.Printf("  %11.3fms  %-16s %-22s %s\n", rec.T.Milliseconds(), rec.Kind, rec.Who, rec.Detail)
			}
		}
	}
	fmt.Println()
	fmt.Println(report)
	if jm := fw.JobManager(); *faultKind != "" || jm.MigrationsAborted > 0 {
		fmt.Printf("recovery: aborted=%d spare-retries=%d cr-fallbacks=%d restart-resends=%d job-lost=%v\n",
			jm.MigrationsAborted, jm.SpareRetries, jm.CRFallbacks, jm.RestartResends, jm.JobLost)
	}
	fmt.Println(metrics.CaptureDataPlane().Delta(dpStart))
	fmt.Printf("application ran %.2fs end to end (overhead vs estimate: %.1f%%)\n",
		appDur.Seconds(), (appDur.Seconds()/w.EstimatedRuntime().Seconds()-1)*100)
	if *verify {
		fmt.Println("image verification: enabled (restart would have failed on any corruption)")
	}
}

// runPartitioned executes the fault-free LU workload on the conservative
// partitioned engine and reports window/cross-traffic statistics. Tracing is
// only attached under -trace (fingerprints cost memory at scale); with it,
// the printed fingerprint is bit-identical at every -workers setting.
func runPartitioned(app, class string, np int, seed int64, parts, workers, iters int, trace bool) {
	if npb.Kernel(app) != npb.LU {
		fmt.Fprintln(os.Stderr, "-partitions supports only -app LU (the sharded wavefront workload)")
		os.Exit(2)
	}
	sc := exp.Scale{Class: npb.Class(class[0]), Ranks: np, PPN: 1, Seed: seed}
	out := exp.RunPartitionedLU(sc, parts, workers, iters, trace)
	fmt.Printf("partitioned LU.%c: %d ranks over %d shards, %d workers, %d iterations\n",
		sc.Class, out.Ranks, out.Parts, out.Workers, out.Iterations)
	fmt.Printf("  %d events in %d windows, %d cross-partition messages\n",
		out.Events, out.Windows, out.CrossMessages)
	fmt.Printf("  virtual %.2fs, wall %.2fs\n", out.VirtualTime.Seconds(), out.Wall.Seconds())
	if trace {
		fmt.Printf("  trace fingerprint %#x (invariant across -workers)\n", out.Fingerprint)
	}
	for g, done := range out.Result.IterDone {
		if done != out.Iterations {
			fmt.Fprintf(os.Stderr, "rank %d finished %d/%d iterations\n", g, done, out.Iterations)
			os.Exit(1)
		}
	}
}

// dumpObs finishes the collector, prints its plain-text summary, and writes
// the Chrome trace-event file when requested. No-op without -obs.
func dumpObs(col *obs.Collector, now sim.Time, traceOut string) {
	if col == nil {
		return
	}
	col.Finish(now)
	fmt.Println("\nObservability summary:")
	if err := obs.WriteSummary(os.Stdout, col); err != nil {
		fmt.Fprintln(os.Stderr, "obs summary:", err)
	}
	if traceOut == "" {
		return
	}
	f, err := os.Create(traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace-out:", err)
		os.Exit(1)
	}
	if err := obs.WriteChromeTrace(f, col); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace-out:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote Perfetto trace to %s (load at ui.perfetto.dev)\n", traceOut)
}
