// Command protocheck is the deterministic simulation-testing driver: it runs
// N seeded random migration scenarios (random workload × faults × schedule
// perturbation), evaluates every registered protocol invariant against each
// run, shrinks any failure to a minimal spec, and emits a summary plus an
// optional JSON artifact.
//
// Examples:
//
//	protocheck -n 500 -seed 1 -parallel 0          # the nightly CI sweep
//	protocheck -spec "seed=42 f=node-crash:tgt@2"  # replay one scenario
//	protocheck -n 100 -shrink=false                # sweep without shrinking
//	protocheck -fleet 200                          # fleet control-plane invariant sweep
//	protocheck -spec "flt seed=7 n=96 auto"        # replay one fleet scenario
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ibmig/internal/check"
	"ibmig/internal/exp"
	"ibmig/internal/obs"
	"ibmig/internal/payload"
	"ibmig/internal/strategy"
)

func main() {
	var (
		n        = flag.Int("n", 100, "number of seeded scenarios to run")
		seed     = flag.Int64("seed", 1, "base seed; scenario i uses seed+i")
		spec     = flag.String("spec", "", "run this one scenario spec instead of a sweep")
		strat    = flag.String("strategy", "", "fault-tolerance strategy for the sweep (proactive, reactive-cr, replicate, adaptive; empty = proactive)")
		jsonOut  = flag.String("json", "", "write the JSON artifact to this file")
		shrink   = flag.Bool("shrink", true, "shrink failing scenarios to minimal repro specs")
		parallel = flag.Int("parallel", 0, "concurrent engines (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "print per-scenario progress")
		invs     = flag.Bool("invariants", false, "list registered invariants and exit")
		parts    = flag.Int("partitions", 0, "run the partitioned-engine invariant sweep with this many partitions per scenario (0 with -workers unset = off; -1 = random 2-5)")
		workers  = flag.Int("workers", 0, "worker goroutines per partitioned scenario (implies the partitioned sweep; determinism is cross-checked against workers=1)")
		fleetN   = flag.Int("fleet", 0, "run the fleet control-plane invariant sweep with this many scenarios (0 = off)")
		poison   = flag.Bool("poison", false, "poison retired extent-arena nodes and validate on reuse (use-after-free detector; host-side only, results unchanged)")
		flight   = flag.Bool("flight-dump", false, "include the flight recorder's telemetry tail in every result, not just failures")
	)
	flag.Parse()

	if *poison {
		payload.SetPoisonFreed(true)
		// Strict telemetry posture rides along: misuse of the obs API (e.g.
		// histogram bucket-bound mismatches) panics instead of being ignored.
		obs.SetStrict(true)
	}
	if *flight {
		check.SetFlightDump(true)
	}

	if _, err := strategy.ByName(*strat); err != nil {
		fmt.Fprintln(os.Stderr, "protocheck:", err)
		os.Exit(2)
	}

	if *invs {
		for _, inv := range check.Registry() {
			fmt.Printf("%-20s %s\n", inv.Name, inv.Desc)
		}
		return
	}

	exp.SetParallelism(*parallel)

	if *parts != 0 || *workers != 0 {
		runPartitioned(*n, *seed, *parts, *workers, *jsonOut, *verbose)
		return
	}

	if *fleetN > 0 {
		runFleetSweep(*fleetN, *seed, *jsonOut, *shrink, *verbose)
		return
	}

	if *spec != "" {
		if check.IsFleetSpec(*spec) {
			runOneFleet(*spec, *jsonOut, *shrink)
		} else {
			runOne(*spec, *jsonOut, *shrink)
		}
		return
	}

	var progress func(int)
	if *verbose {
		progress = func(done int) {
			if done%50 == 0 || done == *n {
				fmt.Fprintf(os.Stderr, "protocheck: %d/%d\n", done, *n)
			}
		}
	}
	sum := check.Sweep(*n, *seed, *strat, progress)
	sum.Write(os.Stdout)
	for _, r := range sum.Failures {
		fmt.Printf("\nFAIL %s\n", r.Spec)
		for _, v := range r.Violations {
			fmt.Printf("  %s\n", v)
		}
		if *shrink {
			min := check.Shrink(r.Scenario, check.Fails)
			fmt.Printf("  repro: protocheck -spec %q\n", min)
		}
	}
	writeJSON(*jsonOut, sum)
	if len(sum.Failures) > 0 {
		os.Exit(1)
	}
}

// runPartitioned is the partitioned-engine invariant sweep: seeded random
// cross-partition traffic through sim.Partitioned, checking delivery
// latency, per-link FIFO, conservation, and worker-count determinism.
func runPartitioned(n int, seed int64, parts, workers int, jsonOut string, verbose bool) {
	if workers < 1 {
		workers = 4
	}
	if parts < 0 {
		parts = 0 // random 2-5 per scenario
	}
	var progress func(int)
	if verbose {
		progress = func(done int) {
			if done%50 == 0 || done == n {
				fmt.Fprintf(os.Stderr, "protocheck[partitioned]: %d/%d\n", done, n)
			}
		}
	}
	sum := check.PartSweep(n, seed, parts, workers, progress)
	sum.Write(os.Stdout)
	writeJSON(jsonOut, sum)
	if len(sum.Failures) > 0 {
		os.Exit(1)
	}
}

// runFleetSweep is the fleet control-plane invariant sweep: seeded random
// fleet scenarios through internal/fleet, checked against the fleet
// invariants, failures shrunk to minimal "flt" specs.
func runFleetSweep(n int, seed int64, jsonOut string, shrink, verbose bool) {
	var progress func(int)
	if verbose {
		progress = func(done int) {
			if done%50 == 0 || done == n {
				fmt.Fprintf(os.Stderr, "protocheck[fleet]: %d/%d\n", done, n)
			}
		}
	}
	sum := check.FleetSweep(n, seed, progress)
	sum.Write(os.Stdout)
	for _, r := range sum.Failures {
		fmt.Printf("\nFAIL %s\n", r.Spec)
		for _, v := range r.Violations {
			fmt.Printf("  %s\n", v)
		}
		if shrink {
			min := check.ShrinkFleet(r.Scenario, check.FailsFleet)
			fmt.Printf("  repro: protocheck -spec %q\n", min)
		}
	}
	writeJSON(jsonOut, sum)
	if len(sum.Failures) > 0 {
		os.Exit(1)
	}
}

func runOneFleet(spec, jsonOut string, shrink bool) {
	fs, err := check.ParseFleet(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "protocheck:", err)
		os.Exit(2)
	}
	res := check.RunFleetScenario(fs)
	fmt.Printf("fleet scenario: %s\n", res.Spec)
	if res.R != nil {
		fmt.Printf("  jobs=%d completed=%d rejected=%d interrupts=%d drains=%d goodput=%.1f%%\n",
			res.R.JobsTotal, res.R.JobsCompleted, res.R.JobsRejected,
			res.R.Interrupts, res.R.Drains, res.R.GoodputPct)
	}
	writeJSON(jsonOut, res)
	if !res.Failed() {
		fmt.Println("  all fleet invariants hold")
		return
	}
	for _, v := range res.Violations {
		fmt.Printf("  VIOLATION %s\n", v)
	}
	if shrink {
		min := check.ShrinkFleet(fs, check.FailsFleet)
		fmt.Printf("  repro: protocheck -spec %q\n", min)
	}
	os.Exit(1)
}

func runOne(spec, jsonOut string, shrink bool) {
	sc, err := check.Parse(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "protocheck:", err)
		os.Exit(2)
	}
	res := check.RunScenario(sc)
	fmt.Printf("scenario: %s\n", res.Spec)
	fmt.Printf("  attempts=%d completed=%d aborted=%d retries=%d fallbacks=%d job_lost=%v app_done=%v\n",
		res.Attempts, res.Completed, res.Aborted, res.Retries, res.Fallbacks, res.JobLost, res.AppDone)
	if len(res.Flight) > 0 {
		fmt.Println("  flight recorder tail:")
		for _, line := range res.Flight {
			fmt.Printf("    %s\n", line)
		}
	}
	writeJSON(jsonOut, res)
	if !res.Failed() {
		fmt.Println("  all invariants hold")
		return
	}
	for _, v := range res.Violations {
		fmt.Printf("  VIOLATION %s\n", v)
	}
	if shrink {
		min := check.Shrink(sc, check.Fails)
		fmt.Printf("  repro: protocheck -spec %q\n", min)
	}
	os.Exit(1)
}

func writeJSON(path string, v any) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "protocheck: write artifact:", err)
		os.Exit(2)
	}
}
