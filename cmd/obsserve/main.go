// Command obsserve runs one simulated migration scenario (or a strategy
// campaign) with the live telemetry plane attached and serves it over HTTP:
//
//	GET /metrics   Prometheus text snapshot (counters, gauges, histograms,
//	               device busy-fractions, stream meta-metrics)
//	GET /stream    Server-Sent Events: live span/counter/gauge/usage events
//	               (or campaign rollups with -campaign), one JSON WireEvent
//	               per "data:" line, terminated by a "done" event
//	GET /trace     Chrome trace-event JSON of the run so far
//	GET /status    run state: virtual time, events, stream delivery/drops
//	GET /healthz   liveness probe
//
// The engine is driven by a throttled clock adapter: virtual time advances in
// -step slices, each followed by a wall sleep of step/-accel — so a run that
// takes 1.3 virtual seconds at -accel 10 plays out over ~130 wall
// milliseconds per virtual step ratio, slow enough to watch live.
//
// Examples:
//
//	obsserve -app LU -class S -np 8 -ppn 2 -accel 20            # watch a migration
//	obsserve -app LU -class S -np 8 -ppn 2 -fault src-crash     # watch a recovery
//	obsserve -campaign 2 -class S -np 8 -ppn 2                  # watch strategies race
//	curl -N http://localhost:8077/stream                        # the live feed
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"ibmig/internal/cluster"
	"ibmig/internal/core"
	"ibmig/internal/cr"
	"ibmig/internal/exp"
	"ibmig/internal/fault"
	"ibmig/internal/npb"
	"ibmig/internal/obs"
	"ibmig/internal/sim"
)

func main() {
	app := flag.String("app", "LU", "application: LU, BT or SP")
	class := flag.String("class", "S", "NPB class: S, W, A, B or C")
	np := flag.Int("np", 8, "number of MPI processes")
	ppn := flag.Int("ppn", 2, "processes per node")
	seed := flag.Int64("seed", 1, "simulation seed")
	triggerFrac := flag.Float64("trigger", 0.33, "migration trigger point as a fraction of estimated runtime")
	faultKind := flag.String("fault", "", "inject a fault during the migration: src-crash, tgt-crash, link or disk")
	faultPhase := flag.Int("fault-phase", 2, "migration phase (1-4) the fault lands at")
	campaign := flag.Int("campaign", 0, "run a strategy campaign with this many failures instead of a single migration")

	addr := flag.String("addr", "localhost:8077", "HTTP listen address")
	accel := flag.Float64("accel", 10, "virtual-over-wall acceleration factor (1 = real time)")
	step := flag.Duration("step", 5*time.Millisecond, "virtual time advanced per pacing slice")
	ring := flag.Int("ring", 1<<16, "per-subscriber event ring capacity")
	heartbeat := flag.Uint64("heartbeat", 1<<12, "engine events between stream heartbeats")
	startDelay := flag.Duration("start-delay", 0, "wall delay before the engine starts (lets consumers attach first)")
	linger := flag.Duration("linger", 0, "keep serving this long after the run ends, then exit")
	maxWall := flag.Duration("max-wall", 10*time.Minute, "hard wall-clock bound on the paced run")
	flightOut := flag.String("flight-out", "", "write the flight recorder dump (JSON) here on exit")
	flightK := flag.Int("flight-k", 64, "flight recorder ring size per actor")
	flag.Parse()
	log.SetPrefix("obsserve: ")
	log.SetFlags(0)
	if *accel <= 0 {
		log.Fatal("-accel must be positive")
	}
	if *np%*ppn != 0 {
		log.Fatal("np must be a multiple of ppn")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on http://%s", ln.Addr())

	if *campaign > 0 {
		serveCampaign(ln, *campaign, *app, *class, *np, *ppn, *seed, *startDelay, *linger)
		return
	}
	serveScenario(ln, scenarioConfig{
		app: *app, class: *class, np: *np, ppn: *ppn, seed: *seed,
		triggerFrac: *triggerFrac, faultKind: *faultKind, faultPhase: *faultPhase,
		accel: *accel, step: sim.Duration(*step), ring: *ring, heartbeat: *heartbeat,
		startDelay: *startDelay, linger: *linger, maxWall: *maxWall,
		flightOut: *flightOut, flightK: *flightK,
	})
}

type scenarioConfig struct {
	app, class         string
	np, ppn            int
	seed               int64
	triggerFrac        float64
	faultKind          string
	faultPhase         int
	accel              float64
	step               sim.Duration
	ring               int
	heartbeat          uint64
	startDelay, linger time.Duration
	maxWall            time.Duration
	flightOut          string
	flightK            int
}

// serveScenario runs one migration scenario under the paced clock and serves
// its live telemetry. The engine owns one goroutine; every HTTP client gets
// its own subscriber ring, and a dedicated pump subscriber feeds the Mirror
// that /metrics and /trace snapshot — handlers never touch the Collector.
func serveScenario(ln net.Listener, cfg scenarioConfig) {
	w := npb.New(npb.Kernel(cfg.app), npb.Class(cfg.class[0]), cfg.np)
	e := sim.NewEngine(cfg.seed)
	spares := 1
	opts := core.Options{}
	if cfg.faultKind != "" {
		spares = 2
		opts.PhaseDeadline = 5 * time.Second
	}
	c := cluster.New(e, cluster.Config{
		ComputeNodes: cfg.np / cfg.ppn,
		SpareNodes:   spares,
		PVFSServers:  4,
	})
	res := npb.NewResult(w.Ranks)
	fw := core.Launch(c, w, cfg.ppn, res, opts)
	jm := fw.JobManager()
	col := obs.Enable(e)
	fr := obs.NewFlightRecorder(cfg.flightK)
	col.AttachFlight(fr)
	e.SetFlushHook(cfg.heartbeat, func(t sim.Time) { col.Heartbeat(t, e.Events()) })

	src := c.Compute[len(c.Compute)/2].Name
	if cfg.faultKind != "" {
		inj := fault.NewInjector(c)
		inj.Bind(fw)
		var sp fault.Spec
		switch cfg.faultKind {
		case "src-crash":
			sp = fault.Spec{Kind: fault.NodeCrash, Node: src}
		case "tgt-crash":
			sp = fault.Spec{Kind: fault.NodeCrash, Node: c.Spares[0].Name}
		case "link":
			sp = fault.Spec{Kind: fault.HCAFail, Node: c.Spares[0].Name}
		case "disk":
			sp = fault.Spec{Kind: fault.DiskFail, Node: c.Spares[0].Name}
		default:
			log.Fatalf("unknown fault %q", cfg.faultKind)
		}
		inj.AtPhase(0, cfg.faultPhase, sp)
		log.Printf("armed fault %v at migration phase %d", sp, cfg.faultPhase)
	}

	e.Spawn("obsserve.ctl", func(p *sim.Proc) {
		fw.W.WaitReady(p)
		if cfg.faultKind != "" {
			if _, err := fw.Checkpoint(p, cr.PVFS); err != nil {
				log.Println("pre-fault checkpoint:", err)
			}
		}
		p.Sleep(sim.Duration(float64(w.EstimatedRuntime()) * cfg.triggerFrac))
		fw.TriggerMigration(p, src).Wait(p)
		for !fw.W.Done() && !jm.JobLost {
			p.Sleep(time.Millisecond)
		}
		e.Stop()
	})

	// The Mirror pump: one subscriber drained on its own goroutine.
	mirror := obs.NewMirror()
	pump := col.Subscribe(cfg.ring)
	pumpDone := make(chan struct{})
	go func() {
		defer close(pumpDone)
		buf := make([]obs.Event, 0, 512)
		for {
			buf = pump.Drain(buf[:0])
			mirror.ApplyAll(buf)
			mirror.SetDropped(pump.Dropped())
			if len(buf) == 0 {
				if pump.Closed() {
					return
				}
				<-pump.Notify()
			}
		}
	}()

	runOver := make(chan struct{})
	// The paced drive loop: advance one virtual step, sleep the matching wall
	// slice. This is the real-time/accelerated clock adapter — the engine
	// still executes every event in order, just throttled against the wall.
	go func() {
		time.Sleep(cfg.startDelay)
		log.Printf("%s: %d ranks, est. runtime %.2fs, accel %gx",
			w.Name(), w.Ranks, w.EstimatedRuntime().Seconds(), cfg.accel)
		wallStart := time.Now()
		pace := time.Duration(float64(cfg.step) / cfg.accel)
		for {
			if err := e.RunUntil(e.Now().Add(cfg.step)); err != nil {
				log.Println("simulation failed:", err)
				break
			}
			if e.Stopped() {
				break
			}
			if _, ok := e.NextEventTime(); !ok {
				break
			}
			if time.Since(wallStart) > cfg.maxWall {
				log.Printf("max-wall %v reached at t=%.2fs, stopping", cfg.maxWall, e.Now().Seconds())
				break
			}
			time.Sleep(pace)
		}
		e.Shutdown()
		col.Finish(e.Now())
		col.Unsubscribe(pump)
		log.Printf("run ended at t=%.2fs after %d events (job-lost=%v done=%v)",
			e.Now().Seconds(), e.Events(), jm.JobLost, fw.W.Done())
		if cfg.flightOut != "" {
			f, err := os.Create(cfg.flightOut)
			if err == nil {
				err = fr.WriteDump(f, e.Now())
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				log.Println("flight-out:", err)
			} else {
				log.Printf("wrote flight dump to %s", cfg.flightOut)
			}
		}
		close(runOver)
	}()

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		done := false
		select {
		case <-runOver:
			done = true
		default:
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"done":           done,
			"sim_ns":         int64(mirror.LastT()),
			"stream_events":  mirror.Events(),
			"stream_dropped": pump.Dropped(),
			"flight_events":  fr.Events(),
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		mirror.PrometheusText(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		mirror.ChromeTrace(w)
	})
	mux.HandleFunc("/stream", func(w http.ResponseWriter, r *http.Request) {
		streamEvents(w, r, col, cfg.ring, runOver)
	})

	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	<-runOver
	<-pumpDone
	time.Sleep(cfg.linger)
	srv.Close()
}

// streamEvents serves one SSE client: its own subscriber ring drained into
// the response, flushed per batch, terminated by a "done" event once the run
// is over and the ring is empty.
func streamEvents(w http.ResponseWriter, r *http.Request, col *obs.Collector, ring int, runOver <-chan struct{}) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	fmt.Fprint(w, ": ibmig live telemetry\n\n")
	fl.Flush()
	sub := col.Subscribe(ring)
	defer col.Unsubscribe(sub)
	buf := make([]obs.Event, 0, 512)
	finish := func() {
		for _, ev := range sub.Drain(buf[:0]) {
			obs.WriteSSE(w, ev.Wire())
		}
		obs.WriteSSE(w, obs.WireEvent{Kind: "done", TNS: int64(col.LastTime())})
		fl.Flush()
	}
	for {
		buf = sub.Drain(buf[:0])
		for _, ev := range buf {
			if obs.WriteSSE(w, ev.Wire()) != nil {
				return
			}
		}
		if len(buf) > 0 {
			fl.Flush()
			continue
		}
		select {
		case <-sub.Notify():
		case <-runOver:
			finish()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// serveCampaign runs exp.RunCampaignLive and serves its rollup stream: every
// ArmUpdate is broadcast to /stream clients as a "campaign" wire event, and
// /metrics exports the latest rollup per strategy as labelled gauges.
func serveCampaign(ln net.Listener, failures int, app, class string, np, ppn int, seed int64, startDelay, linger time.Duration) {
	spec := exp.CampaignSpec{
		Kernel:   npb.Kernel(app),
		Scale:    exp.Scale{Class: npb.Class(class[0]), Ranks: np, PPN: ppn, Seed: seed},
		Failures: failures,
	}
	h := &campaignHub{last: map[string]exp.ArmUpdate{}}
	over := make(chan struct{})
	go func() {
		time.Sleep(startDelay)
		log.Printf("campaign: %s.%c np=%d failures=%d", app, class[0], np, failures)
		result := exp.RunCampaignLive(spec, h.update)
		if best := result.Best(); best != nil {
			log.Printf("campaign done: best %s at %.1f%% goodput", best.Strategy, best.GoodputPct)
		} else {
			log.Print("campaign done: every arm lost the job")
		}
		h.finish()
		close(over)
	}()

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"done": h.done(), "arms": h.snapshot()})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		h.prometheus(w)
	})
	mux.HandleFunc("/stream", h.stream)

	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	<-over
	time.Sleep(linger)
	srv.Close()
}

// campaignHub fans campaign rollups out to SSE clients and keeps the latest
// update per strategy for /metrics.
type campaignHub struct {
	mu     sync.Mutex
	subs   map[chan obs.WireEvent]struct{}
	last   map[string]exp.ArmUpdate
	closed bool
}

func wireUpdate(u exp.ArmUpdate) obs.WireEvent {
	return obs.WireEvent{
		Kind:        "campaign",
		TNS:         u.SimNS,
		Strategy:    u.Strategy,
		ProgressPct: u.ProgressPct,
		GoodputPct:  u.GoodputSoFarPct,
		MTTRNS:      u.MTTRSoFarNS,
		Attempts:    u.Attempts,
		Done:        u.Done,
	}
}

// update implements the RunCampaignLive callback; it is called concurrently
// from the arm engines' goroutines.
func (h *campaignHub) update(u exp.ArmUpdate) {
	ev := wireUpdate(u)
	h.mu.Lock()
	h.last[u.Strategy] = u
	for ch := range h.subs {
		select {
		case ch <- ev:
		default: // slow client: drop rather than stall the arm
		}
	}
	h.mu.Unlock()
}

func (h *campaignHub) finish() {
	h.mu.Lock()
	h.closed = true
	for ch := range h.subs {
		close(ch)
	}
	h.subs = nil
	h.mu.Unlock()
}

func (h *campaignHub) done() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}

func (h *campaignHub) snapshot() map[string]exp.ArmUpdate {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]exp.ArmUpdate, len(h.last))
	for k, v := range h.last {
		out[k] = v
	}
	return out
}

func (h *campaignHub) prometheus(w http.ResponseWriter) {
	for _, metric := range []struct {
		name string
		val  func(u exp.ArmUpdate) float64
	}{
		{"ibmig_campaign_progress_pct", func(u exp.ArmUpdate) float64 { return u.ProgressPct }},
		{"ibmig_campaign_goodput_pct", func(u exp.ArmUpdate) float64 { return u.GoodputSoFarPct }},
		{"ibmig_campaign_mttr_ns", func(u exp.ArmUpdate) float64 { return float64(u.MTTRSoFarNS) }},
		{"ibmig_campaign_attempts", func(u exp.ArmUpdate) float64 { return float64(u.Attempts) }},
	} {
		fmt.Fprintf(w, "# TYPE %s gauge\n", metric.name)
		for name, u := range h.snapshot() {
			fmt.Fprintf(w, "%s{strategy=%q} %g\n", metric.name, name, metric.val(u))
		}
	}
}

func (h *campaignHub) stream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	fmt.Fprint(w, ": ibmig campaign rollups\n\n")
	fl.Flush()
	ch := make(chan obs.WireEvent, 256)
	h.mu.Lock()
	// Replay the latest rollup per strategy so a late subscriber sees the
	// current standings immediately instead of waiting for the next poll.
	replay := make([]obs.WireEvent, 0, len(h.last))
	for _, u := range h.last {
		replay = append(replay, wireUpdate(u))
	}
	closed := h.closed
	if !closed {
		if h.subs == nil {
			h.subs = map[chan obs.WireEvent]struct{}{}
		}
		h.subs[ch] = struct{}{}
	}
	h.mu.Unlock()
	sort.Slice(replay, func(i, j int) bool { return replay[i].Strategy < replay[j].Strategy })
	for _, ev := range replay {
		if obs.WriteSSE(w, ev) != nil {
			return
		}
	}
	fl.Flush()
	if closed {
		obs.WriteSSE(w, obs.WireEvent{Kind: "done"})
		fl.Flush()
		return
	}
	defer func() {
		h.mu.Lock()
		delete(h.subs, ch)
		h.mu.Unlock()
	}()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				obs.WriteSSE(w, obs.WireEvent{Kind: "done"})
				fl.Flush()
				return
			}
			if obs.WriteSSE(w, ev) != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
