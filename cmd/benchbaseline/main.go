// Command benchbaseline measures the simulator's performance baseline and
// writes it to a JSON file (BENCH_sim.json at the repo root, by convention)
// so kernel regressions show up as a diff, not a feeling.
//
// It records three layers:
//
//   - kernel microbenchmarks: event throughput, queue ping-pong, same-time
//     batch dispatch — ns/op and events/sec, via testing.Benchmark
//   - payload checksum throughput: generator-lane fold (cold) and memoized
//     (warm) paths
//   - experiment macrobenchmark: wall time and events/sec of the paper-scale
//     LU migration-vs-CR comparison (the Fig. 7 workhorse), plus the scale
//     sweep at increasing -parallel settings with measured speedups
//   - robustness: head-to-head strategy campaigns (per-strategy goodput and
//     MTTR under identical fault schedules), so recovery-quality regressions
//     are tracked next to performance ones
//   - fleet: the fleet control-plane economics campaign (1,000 nodes, 200
//     jobs, 30 simulated days per policy arm) — goodput, node-hours lost,
//     MTTI/MTTR and queue waits per scheduling × spare-pool policy
//   - partitioned scaling: the conservative time-windowed partitioned engine
//     at the top sweep point — serial full-mesh baseline vs sharded worlds at
//     increasing worker counts, with wall-clock speedups
//
// Usage:
//
//	benchbaseline [-o BENCH_sim.json] [-quick] [-seed N]
//
// -quick substitutes the reduced scale (class W / 16 ranks, short sweep
// ladder) for CI smoke runs. Numbers are host-dependent; the committed
// BENCH_sim.json records the machine it was measured on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"ibmig/internal/core"
	"ibmig/internal/exp"
	"ibmig/internal/fleet"
	"ibmig/internal/mem"
	"ibmig/internal/metrics"
	"ibmig/internal/npb"
	"ibmig/internal/obs"
	"ibmig/internal/payload"
	"ibmig/internal/sim"
)

// Micro is one kernel microbenchmark result.
type Micro struct {
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
}

// Sweep is one parallelism setting of the scaling study.
type Sweep struct {
	Parallelism int     `json:"parallelism"`
	WallS       float64 `json:"wall_s"`
	SpeedupX    float64 `json:"speedup_x"`
	// Oversubscribed marks points whose parallelism exceeds the host's CPU
	// count: their speedup measures scheduling overhead, not scaling, and
	// must not be read as a parallel-efficiency regression.
	Oversubscribed bool `json:"oversubscribed,omitempty"`
}

// Baseline is the whole report.
type Baseline struct {
	GeneratedBy string `json:"generated_by"`
	MeasuredAt  string `json:"measured_at"`
	NumCPU      int    `json:"num_cpu"`
	GoMaxProcs  int    `json:"go_max_procs"`
	Scale       string `json:"scale"`

	Kernel  map[string]Micro `json:"kernel"`
	Payload struct {
		ChecksumColdMBps float64 `json:"checksum_cold_MBps"`
		ChecksumWarmNsOp float64 `json:"checksum_warm_ns_per_op"`
	} `json:"payload"`

	PaperComparison struct {
		Kernel  string  `json:"kernel"`
		WallS   float64 `json:"wall_s"`
		Events  uint64  `json:"events"`
		MevPerS float64 `json:"mev_per_s"`
	} `json:"paper_comparison"`

	SweepScaling []Sweep `json:"sweep_scaling"`

	// PartitionedScaling records the conservative partitioned engine at the
	// top sweep point: the first point is the serial parts=1 full-mesh
	// baseline, the rest shard the same workload across `parts` partitions at
	// each worker count. On a single-core host the speedup comes from the
	// O((ranks/parts)^2) per-shard connection mesh, not from the workers.
	PartitionedScaling struct {
		Kernel     string      `json:"kernel"`
		Ranks      int         `json:"ranks"`
		Iterations int         `json:"iterations"`
		Parts      int         `json:"parts"`
		Points     []PartPoint `json:"points"`
	} `json:"partitioned_scaling"`

	// DataPlane records the zero-copy data-plane telemetry: splice/merge
	// activity and — the headline number — how few bytes the paper-scale
	// comparison and the largest sweep point ever materialize.
	DataPlane struct {
		Comparison struct {
			RegionWrites      uint64 `json:"region_writes"`
			ExtentSplits      uint64 `json:"extent_splits"`
			ExtentMerges      uint64 `json:"extent_merges"`
			MaterializedBytes uint64 `json:"materialized_bytes"`
		} `json:"paper_comparison"`
		TopSweepPoint struct {
			Ranks             int     `json:"ranks"`
			WallS             float64 `json:"wall_s"`
			Events            uint64  `json:"events"`
			RegionWrites      uint64  `json:"region_writes"`
			LiveExtents       int64   `json:"live_extents"`
			MaterializedBytes uint64  `json:"materialized_bytes"`
			AllocMB           float64 `json:"alloc_mb"`
		} `json:"top_sweep_point"`
		RegionWriteChurn Micro `json:"region_write_churn"`
	} `json:"data_plane"`

	// MemoryFootprint records the extent-arena footprint study: the large
	// sweep points re-run standalone with peak tracking rebaselined, so the
	// high-water mark of live extent descriptors and the cumulative Go
	// allocation are attributable to the point. The arena counters tell the
	// reclamation story (how many node allocations were recycled vs minted,
	// and how many nodes epoch closes returned).
	MemoryFootprint struct {
		Kernel string           `json:"kernel"`
		Points []FootprintPoint `json:"points"`
	} `json:"memory_footprint"`

	// Obs characterizes the observability layer on an observed paper-scale
	// LU migration: the RDMA chunk-latency distribution, the hottest IB link,
	// companion latency histograms, and the cost accounting (disabled-path
	// ns/op must stay within the ≤2% overhead budget; observed wall time
	// shows the enabled cost at full scale).
	Obs struct {
		Kernel             string  `json:"kernel"`
		RDMAChunks         int64   `json:"rdma_chunks"`
		RDMAChunkP50US     float64 `json:"rdma_chunk_p50_us"`
		RDMAChunkP99US     float64 `json:"rdma_chunk_p99_us"`
		PeakLink           string  `json:"peak_link"`
		PeakLinkBusyFrac   float64 `json:"peak_link_busy_frac"`
		AggWaitP99US       float64 `json:"agg_wait_p99_us"`
		FTBDeliveryP50US   float64 `json:"ftb_delivery_p50_us"`
		Spans              int     `json:"spans"`
		ObservedWallS      float64 `json:"observed_wall_s"`
		DisabledPathNsOp   float64 `json:"disabled_path_ns_per_op"`
		DisabledPathAllocs int64   `json:"disabled_path_allocs_per_op"`
	} `json:"obs"`

	// Robustness records the head-to-head fault-tolerance campaigns so
	// BENCH_sim.json tracks recovery quality alongside performance: every
	// strategy runs the same job under an identical fault schedule, at the
	// paper's headline point (one well-predicted failure) and at the burst
	// point that reverses the verdict (three failures, only the first
	// predicted). The simulated numbers are deterministic; only wall_s is
	// host-dependent.
	Robustness struct {
		Kernel       string        `json:"kernel"`
		WallS        float64       `json:"wall_s"`
		OnePredicted []StrategyArm `json:"one_predicted_failure"`
		Burst3       []StrategyArm `json:"three_failure_burst"`
	} `json:"robustness"`

	// Fleet records the fleet control-plane economics campaign: every policy
	// arm (FIFO/backfill × fixed/autoscaled spare pool) schedules the same
	// workload against the same failure realization, so the per-arm goodput,
	// node-hours-lost, MTTI/MTTR and queue-wait numbers are pure policy
	// signal. All simulated numbers are deterministic; only wall_s is
	// host-dependent.
	Fleet struct {
		Nodes       int                  `json:"nodes"`
		Jobs        int                  `json:"jobs"`
		HorizonDays float64              `json:"horizon_days"`
		WallS       float64              `json:"wall_s"`
		Arms        []exp.FleetArmResult `json:"arms"`
	} `json:"fleet"`

	// Telemetry records the streaming-telemetry overhead: the same observed
	// paper-scale migration run with the live sink off and on (a subscriber
	// ring drained concurrently, the cmd/obsserve shape). The simulated
	// results are bit-identical either way (TestGoldenTraceStreamEnabled);
	// this section prices the host-side cost of watching.
	Telemetry struct {
		Kernel string `json:"kernel"`
		// Engine events per wall second with no sink vs a live sink attached,
		// and the relative slowdown.
		SinkOffEventsPerSec float64 `json:"sink_off_events_per_sec"`
		SinkOnEventsPerSec  float64 `json:"sink_on_events_per_sec"`
		OverheadPct         float64 `json:"overhead_pct"`
		// What the sink actually carried: telemetry events delivered to the
		// subscriber and events lost to ring overflow (0 with a keeping-up
		// consumer).
		SinkEvents  uint64 `json:"sink_events"`
		SinkDropped uint64 `json:"sink_dropped"`
	} `json:"telemetry"`

	// PreOptimization pins the numbers measured on the same host immediately
	// before the hot-path overhaul (ready-ring batching, event freelist, ring
	// wait lists, checksum memoization), for before/after comparison.
	PreOptimization map[string]any `json:"pre_optimization"`
}

// FootprintPoint is one rank count of the memory-footprint study.
type FootprintPoint struct {
	Ranks            int     `json:"ranks"`
	WallS            float64 `json:"wall_s"`
	Events           uint64  `json:"events"`
	PeakLiveExtents  int64   `json:"peak_live_extents"`
	FinalLiveExtents int64   `json:"final_live_extents"`
	AllocMB          float64 `json:"alloc_mb"`
	ArenaChunks      int64   `json:"arena_chunks"`
	ArenaRecycled    uint64  `json:"arena_recycled"`
	ArenaMinted      uint64  `json:"arena_minted"`
	EpochFrees       uint64  `json:"epoch_frees"`
	EpochsClosed     uint64  `json:"epochs_closed"`
	Compactions      uint64  `json:"compactions"`
	CompactedExts    uint64  `json:"compacted_extents"`
}

// measureMemory fills the memory_footprint section: the top two sweep points
// run standalone, with the GC settled and the peak-live-extents high-water
// mark rebaselined before each, so peaks and allocation deltas belong to the
// point alone.
// measureSweepScaling fills the sweep_scaling section: the whole rank ladder
// at growing exp.RunParallel worker counts, flagging oversubscribed points
// (parallelism beyond the host's CPUs) so a sub-1x "speedup" on a small host
// is never mistaken for a scaling regression.
func measureSweepScaling(b *Baseline, sc exp.Scale, sweepRanks []int) {
	b.SweepScaling = nil
	var serialWall float64
	for _, par := range []int{1, 2, 4, 8} {
		if par > 2*runtime.NumCPU() && par > 2 {
			break // oversubscribing further tells us nothing
		}
		fmt.Fprintf(os.Stderr, "sweep at parallelism %d...\n", par)
		exp.SetParallelism(par)
		payload.ResetChecksumCache()
		start := time.Now()
		exp.ScaleSweep(sc, sweepRanks)
		w := time.Since(start).Seconds()
		if par == 1 {
			serialWall = w
		}
		sp := Sweep{Parallelism: par, WallS: w, Oversubscribed: par > runtime.NumCPU()}
		if w > 0 {
			sp.SpeedupX = serialWall / w
		}
		b.SweepScaling = append(b.SweepScaling, sp)
	}
	exp.SetParallelism(1)
}

func measureMemory(b *Baseline, sc exp.Scale, sweepRanks []int) {
	pts := sweepRanks
	if len(pts) > 2 {
		pts = pts[len(pts)-2:]
	}
	b.MemoryFootprint.Kernel = "LU"
	b.MemoryFootprint.Points = nil
	for _, ranks := range pts {
		fmt.Fprintf(os.Stderr, "memory footprint (%d ranks)...\n", ranks)
		payload.ResetChecksumCache()
		runtime.GC()
		var ms0 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		payload.ResetPeakLiveExtents()
		arBefore := metrics.CaptureArena()
		dpBefore := metrics.CaptureDataPlane()
		start := time.Now()
		out := exp.RunMigration(npb.LU, exp.Scale{Class: sc.Class, Ranks: ranks, PPN: sc.PPN, Seed: sc.Seed}, core.Options{}, false)
		wall := time.Since(start).Seconds()
		var ms1 runtime.MemStats
		runtime.ReadMemStats(&ms1)
		ar := metrics.CaptureArena().Delta(arBefore)
		dp := metrics.CaptureDataPlane()
		allocMB := float64(ms1.TotalAlloc-ms0.TotalAlloc) / (1 << 20)
		// This is the same standalone measurement the top_sweep_point section
		// makes on a full run; keep that section in sync so an incremental
		// -only memory refresh never leaves the two telling different stories.
		if ranks == sweepRanks[len(sweepRanks)-1] {
			d := dp.Delta(dpBefore)
			b.DataPlane.TopSweepPoint.Ranks = ranks
			b.DataPlane.TopSweepPoint.WallS = wall
			b.DataPlane.TopSweepPoint.Events = out.Events
			b.DataPlane.TopSweepPoint.RegionWrites = d.RegionWrites
			b.DataPlane.TopSweepPoint.LiveExtents = d.LiveExtents
			b.DataPlane.TopSweepPoint.MaterializedBytes = d.MaterializedBytes
			b.DataPlane.TopSweepPoint.AllocMB = allocMB
		}
		b.MemoryFootprint.Points = append(b.MemoryFootprint.Points, FootprintPoint{
			Ranks:            ranks,
			WallS:            wall,
			Events:           out.Events,
			PeakLiveExtents:  ar.PeakLiveExtents,
			FinalLiveExtents: dp.LiveExtents,
			AllocMB:          allocMB,
			ArenaChunks:      ar.Chunks,
			ArenaRecycled:    ar.Recycled,
			ArenaMinted:      ar.Minted,
			EpochFrees:       ar.EpochFrees,
			EpochsClosed:     ar.EpochsClosed,
			Compactions:      ar.Compactions,
			CompactedExts:    ar.CompactedAway,
		})
	}
}

// PartPoint is one point of the partitioned-engine scaling study.
type PartPoint struct {
	Parts         int     `json:"parts"`
	Workers       int     `json:"workers"`
	WallS         float64 `json:"wall_s"`
	Events        uint64  `json:"events"`
	Windows       uint64  `json:"windows"`
	CrossMessages uint64  `json:"cross_messages"`
	SpeedupX      float64 `json:"speedup_x"`
}

// StrategyArm is one strategy's outcome in a robustness campaign.
type StrategyArm struct {
	Strategy        string  `json:"strategy"`
	Completed       bool    `json:"completed"`
	GoodputPct      float64 `json:"goodput_pct"`
	MTTRS           float64 `json:"mttr_s"`
	ReworkS         float64 `json:"rework_s"`
	NodeSecondsLost float64 `json:"node_seconds_lost"`
	Migrations      int     `json:"migrations"`
	Restarts        int     `json:"restarts"`
	ReplicaRestores int     `json:"replica_restores"`
}

func armsOf(cr *exp.CampaignResult) []StrategyArm {
	var out []StrategyArm
	for i := range cr.Results {
		r := &cr.Results[i]
		out = append(out, StrategyArm{
			Strategy:        r.Strategy,
			Completed:       r.Completed,
			GoodputPct:      r.GoodputPct,
			MTTRS:           time.Duration(r.MTTRNS).Seconds(),
			ReworkS:         time.Duration(r.ReworkNS).Seconds(),
			NodeSecondsLost: r.NodeSecondsLost,
			Migrations:      r.Migrations,
			Restarts:        r.ReactiveRestarts,
			ReplicaRestores: r.ReplicaRestores,
		})
	}
	return out
}

// measureRobustness fills the robustness section from two strategy campaigns
// on the shared failure schedule.
func measureRobustness(b *Baseline, sc exp.Scale) {
	fmt.Fprintln(os.Stderr, "strategy campaigns (robustness section)...")
	old := exp.Parallelism()
	exp.SetParallelism(0)
	defer exp.SetParallelism(old)
	start := time.Now()
	spec := exp.CampaignSpec{Kernel: npb.LU, Scale: sc, Failures: 1}
	one := exp.RunCampaign(spec)
	spec.Failures = 3
	burst := exp.RunCampaign(spec)
	b.Robustness.Kernel = "LU"
	b.Robustness.WallS = time.Since(start).Seconds()
	b.Robustness.OnePredicted = armsOf(one)
	b.Robustness.Burst3 = armsOf(burst)
}

// measureFleet fills the fleet section: the acceptance-criteria campaign
// (1,000 nodes, 200 jobs, 30 simulated days) at paper scale, a one-week
// 128-node fleet at quick scale.
func measureFleet(b *Baseline, sc exp.Scale, quick bool) {
	// MeanWork is sized so total demand slightly exceeds fleet capacity over
	// the horizon: a queue forms and the scheduling arms actually diverge
	// (an underloaded fleet makes backfill indistinguishable from FIFO).
	base := fleet.Config{
		Nodes:    1000,
		RackSize: 10,
		NodeMTBF: 4 * 24 * time.Hour,
		Horizon:  30 * 24 * time.Hour,
		Jobs:     200,
		MaxWidth: 64,
		MeanWork: 120 * time.Hour,
		Seed:     sc.Seed,
	}
	if quick {
		base.Nodes, base.RackSize = 128, 8
		base.Horizon = 7 * 24 * time.Hour
		base.Jobs, base.MaxWidth, base.MeanWork = 64, 24, 18*time.Hour
	}
	fmt.Fprintf(os.Stderr, "fleet campaign (%d nodes, %d jobs)...\n", base.Nodes, base.Jobs)
	old := exp.Parallelism()
	exp.SetParallelism(0)
	defer exp.SetParallelism(old)
	start := time.Now()
	res := exp.RunFleetCampaign(exp.FleetCampaignSpec{Base: base})
	b.Fleet.Nodes = base.Nodes
	b.Fleet.Jobs = base.Jobs
	b.Fleet.HorizonDays = base.Horizon.Hours() / 24
	b.Fleet.WallS = time.Since(start).Seconds()
	b.Fleet.Arms = res.Arms
}

// measurePartitioned fills the partitioned_scaling section: the top sweep
// point on the conservative partitioned engine, serial baseline first. The
// iteration count is trimmed so setup and steady state both show in wall
// time; it is recorded in the section so points stay comparable across runs.
func measurePartitioned(b *Baseline, sc exp.Scale, sweepRanks []int) {
	top := sweepRanks[len(sweepRanks)-1]
	fmt.Fprintf(os.Stderr, "partitioned engine scaling (%d ranks)...\n", top)
	iters := 4
	if top <= 256 {
		iters = 10
	}
	psc := exp.Scale{Class: sc.Class, Ranks: top, PPN: sc.PPN, Seed: sc.Seed}
	pts := exp.PartitionedScaling(psc, 8, []int{1, 2, 4, 8}, iters)
	b.PartitionedScaling.Kernel = "LU"
	b.PartitionedScaling.Ranks = top
	b.PartitionedScaling.Iterations = pts[0].Iterations
	b.PartitionedScaling.Parts = 8
	b.PartitionedScaling.Points = nil
	base := pts[0].Wall.Seconds()
	for _, p := range pts {
		pt := PartPoint{
			Parts: p.Parts, Workers: p.Workers, WallS: p.Wall.Seconds(),
			Events: p.Events, Windows: p.Windows, CrossMessages: p.CrossMessages,
		}
		if w := p.Wall.Seconds(); w > 0 {
			pt.SpeedupX = base / w
		}
		b.PartitionedScaling.Points = append(b.PartitionedScaling.Points, pt)
	}
}

func microOf(r testing.BenchmarkResult, events uint64) Micro {
	m := Micro{NsPerOp: float64(r.NsPerOp()), AllocsPerOp: r.AllocsPerOp()}
	if s := r.T.Seconds(); s > 0 {
		m.EventsPerSec = float64(events) / s
	}
	return m
}

// measureObs fills the obs section from one observed migration plus the
// disabled-path microbenchmark.
func measureObs(b *Baseline, sc exp.Scale) {
	fmt.Fprintln(os.Stderr, "observed migration (obs section)...")
	payload.ResetChecksumCache()
	start := time.Now()
	_, col := exp.RunMigrationObserved(npb.LU, sc, core.Options{}, false)
	b.Obs.ObservedWallS = time.Since(start).Seconds()
	b.Obs.Kernel = "LU"
	h := col.Histogram("ib.rdma_read_us")
	b.Obs.RDMAChunks = h.Count()
	b.Obs.RDMAChunkP50US = h.Quantile(0.50)
	b.Obs.RDMAChunkP99US = h.Quantile(0.99)
	b.Obs.AggWaitP99US = col.Histogram("core.agg_wait_us").Quantile(0.99)
	b.Obs.FTBDeliveryP50US = col.Histogram("ftb.delivery_us").Quantile(0.50)
	b.Obs.Spans = len(col.Spans())
	// All capacity-1 links peak at 100%, so "hottest" means busiest fraction
	// of its active window, not highest instantaneous peak.
	var peakName string
	var peakBusy float64
	for _, name := range col.TopTracks("ib.") {
		if busy := col.Track(name).BusyFraction(); busy > peakBusy {
			peakName, peakBusy = name, busy
		}
	}
	b.Obs.PeakLink, b.Obs.PeakLinkBusyFrac = peakName, peakBusy

	r := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		e := sim.NewEngine(1)
		for i := 0; i < tb.N; i++ {
			c := obs.Get(e)
			id := c.StartSpan(e.Now(), "x", "a", 0)
			c.EndSpan(e.Now(), id)
			c.Hist("h", obs.LatencyBucketsUS).Observe(1)
		}
	})
	b.Obs.DisabledPathNsOp = float64(r.NsPerOp())
	b.Obs.DisabledPathAllocs = r.AllocsPerOp()
}

// measureTelemetry fills the telemetry section: the observed paper-scale
// migration with the sink off, then again with a live subscriber ring drained
// concurrently, priced as engine events per wall second.
func measureTelemetry(b *Baseline, sc exp.Scale) {
	fmt.Fprintln(os.Stderr, "streaming telemetry overhead (telemetry section)...")
	b.Telemetry.Kernel = "LU"
	payload.ResetChecksumCache()
	start := time.Now()
	offOut, _ := exp.RunMigrationObserved(npb.LU, sc, core.Options{}, false)
	offWall := time.Since(start).Seconds()
	payload.ResetChecksumCache()
	start = time.Now()
	onOut, _, stats := exp.RunMigrationStreamed(npb.LU, sc, core.Options{}, false, 1<<16)
	onWall := time.Since(start).Seconds()
	if offWall > 0 {
		b.Telemetry.SinkOffEventsPerSec = float64(offOut.Events) / offWall
	}
	if onWall > 0 {
		b.Telemetry.SinkOnEventsPerSec = float64(onOut.Events) / onWall
	}
	if offWall > 0 {
		b.Telemetry.OverheadPct = (onWall/offWall - 1) * 100
	}
	b.Telemetry.SinkEvents = stats.Events
	b.Telemetry.SinkDropped = stats.Dropped
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output file")
	quick := flag.Bool("quick", false, "reduced scale for CI smoke runs")
	only := flag.String("only", "", "re-measure just one section into an existing file (supported: obs, robustness, partitioned, memory, sweep, telemetry, fleet)")
	seed := flag.Int64("seed", 1, "simulation seed")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	var b Baseline
	b.GeneratedBy = "cmd/benchbaseline"
	b.MeasuredAt = time.Now().UTC().Format(time.RFC3339)
	b.NumCPU = runtime.NumCPU()
	b.GoMaxProcs = runtime.GOMAXPROCS(0)
	b.Kernel = map[string]Micro{}

	sc := exp.PaperScale
	sweepRanks := exp.DefaultSweepRanks
	b.Scale = "paper"
	if *quick {
		sc = exp.QuickScale
		sweepRanks = exp.QuickSweepRanks
		b.Scale = "quick"
	}
	sc.Seed = *seed

	// Incremental mode: a full regeneration takes minutes, so -only re-measures
	// one section into the existing file and leaves the rest untouched.
	if *only != "" {
		switch *only {
		case "obs", "robustness", "partitioned", "memory", "sweep", "telemetry", "fleet":
		default:
			fmt.Fprintf(os.Stderr, "unsupported -only section %q (supported: obs, robustness, partitioned, memory, sweep, telemetry, fleet)\n", *only)
			os.Exit(2)
		}
		data, err := os.ReadFile(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := json.Unmarshal(data, &b); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *out, err)
			os.Exit(1)
		}
		switch *only {
		case "obs":
			measureObs(&b, sc)
			writeBaseline(*out, &b)
			fmt.Printf("updated obs section of %s (p50=%.1fµs p99=%.1fµs over %d chunks, hottest link %s at %.1f%%)\n",
				*out, b.Obs.RDMAChunkP50US, b.Obs.RDMAChunkP99US, b.Obs.RDMAChunks,
				b.Obs.PeakLink, b.Obs.PeakLinkBusyFrac*100)
		case "robustness":
			measureRobustness(&b, sc)
			writeBaseline(*out, &b)
			fmt.Printf("updated robustness section of %s (%d arms per campaign, %.1fs wall)\n",
				*out, len(b.Robustness.OnePredicted), b.Robustness.WallS)
		case "fleet":
			measureFleet(&b, sc, *quick)
			writeBaseline(*out, &b)
			fmt.Printf("updated fleet section of %s (%d nodes, %d jobs, %d arms, %.1fs wall)\n",
				*out, b.Fleet.Nodes, b.Fleet.Jobs, len(b.Fleet.Arms), b.Fleet.WallS)
		case "partitioned":
			measurePartitioned(&b, sc, sweepRanks)
			writeBaseline(*out, &b)
			ps := b.PartitionedScaling
			last := ps.Points[len(ps.Points)-1]
			fmt.Printf("updated partitioned_scaling section of %s (%d ranks, serial %.1fs vs %d shards x %d workers %.1fs, %.2fx)\n",
				*out, ps.Ranks, ps.Points[0].WallS, last.Parts, last.Workers, last.WallS, last.SpeedupX)
		case "sweep":
			measureSweepScaling(&b, sc, sweepRanks)
			writeBaseline(*out, &b)
			last := b.SweepScaling[len(b.SweepScaling)-1]
			fmt.Printf("updated sweep_scaling section of %s (%d points, last: parallelism %d, %.1fs, %.2fx, oversubscribed=%v)\n",
				*out, len(b.SweepScaling), last.Parallelism, last.WallS, last.SpeedupX, last.Oversubscribed)
		case "memory":
			measureMemory(&b, sc, sweepRanks)
			writeBaseline(*out, &b)
			top := b.MemoryFootprint.Points[len(b.MemoryFootprint.Points)-1]
			fmt.Printf("updated memory_footprint section of %s (%d ranks: peak %d live extents, %.0f MB allocated, %d recycled / %d minted)\n",
				*out, top.Ranks, top.PeakLiveExtents, top.AllocMB, top.ArenaRecycled, top.ArenaMinted)
		case "telemetry":
			measureTelemetry(&b, sc)
			writeBaseline(*out, &b)
			fmt.Printf("updated telemetry section of %s (sink off %.2f Mev/s, on %.2f Mev/s, overhead %.1f%%, %d events streamed, %d dropped)\n",
				*out, b.Telemetry.SinkOffEventsPerSec/1e6, b.Telemetry.SinkOnEventsPerSec/1e6,
				b.Telemetry.OverheadPct, b.Telemetry.SinkEvents, b.Telemetry.SinkDropped)
		}
		return
	}

	// --- kernel microbenchmarks ------------------------------------------
	fmt.Fprintln(os.Stderr, "kernel microbenchmarks...")
	var lastEvents uint64
	r := testing.Benchmark(func(tb *testing.B) {
		e := sim.NewEngine(1)
		e.Spawn("ticker", func(p *sim.Proc) {
			for i := 0; i < tb.N; i++ {
				p.Sleep(time.Microsecond)
			}
		})
		tb.ResetTimer()
		if err := e.Run(); err != nil {
			tb.Fatal(err)
		}
		lastEvents = e.Events()
	})
	b.Kernel["event_throughput"] = microOf(r, lastEvents)

	r = testing.Benchmark(func(tb *testing.B) {
		e := sim.NewEngine(1)
		q1 := sim.NewQueue[int](e, "q1", 0)
		q2 := sim.NewQueue[int](e, "q2", 0)
		e.Spawn("a", func(p *sim.Proc) {
			for i := 0; i < tb.N; i++ {
				q1.Send(p, i)
				q2.Recv(p)
			}
		})
		e.Spawn("b", func(p *sim.Proc) {
			for i := 0; i < tb.N; i++ {
				q1.Recv(p)
				q2.Send(p, i)
			}
		})
		tb.ResetTimer()
		if err := e.Run(); err != nil {
			tb.Fatal(err)
		}
		lastEvents = e.Events()
	})
	b.Kernel["ping_pong"] = microOf(r, lastEvents)

	// Persistent driver, shared worker body, reusable WaitGroup — the same
	// shape as sim's BenchmarkSameTimeBatch, so allocs/op measures the kernel's
	// pooled spawn path rather than per-iteration closure construction.
	r = testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		e := sim.NewEngine(1)
		wg := sim.NewWaitGroup(e)
		worker := func(p *sim.Proc) {
			p.Sleep(time.Microsecond)
			wg.Done()
		}
		e.Spawn("driver", func(p *sim.Proc) {
			for i := 0; i < tb.N; i++ {
				wg.Add(256)
				for w := 0; w < 256; w++ {
					p.SpawnChild("w", worker)
				}
				wg.Wait(p)
			}
		})
		tb.ResetTimer()
		if err := e.Run(); err != nil {
			tb.Fatal(err)
		}
		lastEvents = e.Events()
	})
	b.Kernel["same_time_batch_256"] = microOf(r, lastEvents)

	// --- payload ----------------------------------------------------------
	fmt.Fprintln(os.Stderr, "payload checksum...")
	r = testing.Benchmark(func(tb *testing.B) {
		tb.SetBytes(1 << 20)
		for i := 0; i < tb.N; i++ {
			_ = payload.Synth(uint64(i)+1, 0, 1<<20).Checksum()
		}
	})
	b.Payload.ChecksumColdMBps = float64(r.Bytes*int64(r.N)) / (1 << 20) / r.T.Seconds()
	warm := payload.Synth(1, 0, 1<<20)
	warm.Checksum() // populate cache
	r = testing.Benchmark(func(tb *testing.B) {
		for i := 0; i < tb.N; i++ {
			_ = warm.Checksum()
		}
	})
	b.Payload.ChecksumWarmNsOp = float64(r.NsPerOp())

	// --- paper-scale comparison ------------------------------------------
	// Events come from a separate untimed migration run (RunComparison does
	// not expose its engine); the Mev/s figure uses that count as a proxy for
	// per-run event volume.
	fmt.Fprintln(os.Stderr, "paper-scale LU comparison...")
	migOut := exp.RunMigration(npb.LU, sc, core.Options{}, false)
	payload.ResetChecksumCache()
	dpBefore := metrics.CaptureDataPlane()
	start := time.Now()
	exp.RunComparison(npb.LU, sc, core.Options{})
	wall := time.Since(start).Seconds()
	dpCmp := metrics.CaptureDataPlane().Delta(dpBefore)
	b.PaperComparison.Kernel = "LU"
	b.PaperComparison.WallS = wall
	b.PaperComparison.Events = migOut.Events
	if wall > 0 {
		b.PaperComparison.MevPerS = float64(migOut.Events) / wall / 1e6
	}
	b.DataPlane.Comparison.RegionWrites = dpCmp.RegionWrites
	b.DataPlane.Comparison.ExtentSplits = dpCmp.ExtentSplits
	b.DataPlane.Comparison.ExtentMerges = dpCmp.ExtentMerges
	b.DataPlane.Comparison.MaterializedBytes = dpCmp.MaterializedBytes

	// --- data plane -------------------------------------------------------
	// Region-write churn: sustained random overwrites of one region. The
	// interesting numbers are allocs/op (descriptor splicing, no content
	// rebuild) and that it stays flat as the region fills.
	r = testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		reg := mem.NewRegion(64<<20, 1)
		for i := 0; i < tb.N; i++ {
			off := int64(i%8191) * 8192 % (64<<20 - 1<<16)
			reg.Write(off, payload.Synth(uint64(i)+2, 0, 1<<16))
		}
	})
	// One region write is one op; events/sec here means sustained writes/sec
	// (it was accidentally left at zero before).
	b.DataPlane.RegionWriteChurn = microOf(r, uint64(r.N))

	// Largest sweep point, run standalone so its data-plane delta and
	// allocation footprint are attributable (the sweep loop below fans points
	// across goroutines, which blurs the process-wide counters).
	top := sweepRanks[len(sweepRanks)-1]
	fmt.Fprintf(os.Stderr, "top sweep point (%d ranks)...\n", top)
	payload.ResetChecksumCache()
	runtime.GC()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	dpBefore = metrics.CaptureDataPlane()
	start = time.Now()
	topOut := exp.RunMigration(npb.LU, exp.Scale{Class: sc.Class, Ranks: top, PPN: sc.PPN, Seed: sc.Seed}, core.Options{}, false)
	topWall := time.Since(start).Seconds()
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	dpTop := metrics.CaptureDataPlane().Delta(dpBefore)
	b.DataPlane.TopSweepPoint.Ranks = top
	b.DataPlane.TopSweepPoint.WallS = topWall
	b.DataPlane.TopSweepPoint.Events = topOut.Events
	b.DataPlane.TopSweepPoint.RegionWrites = dpTop.RegionWrites
	b.DataPlane.TopSweepPoint.LiveExtents = dpTop.LiveExtents
	b.DataPlane.TopSweepPoint.MaterializedBytes = dpTop.MaterializedBytes
	b.DataPlane.TopSweepPoint.AllocMB = float64(ms1.TotalAlloc-ms0.TotalAlloc) / (1 << 20)

	// --- sweep scaling ----------------------------------------------------
	measureSweepScaling(&b, sc, sweepRanks)

	// --- memory footprint -------------------------------------------------
	measureMemory(&b, sc, sweepRanks)

	// --- partitioned engine ----------------------------------------------
	measurePartitioned(&b, sc, sweepRanks)

	// --- robustness -------------------------------------------------------
	measureRobustness(&b, sc)

	// --- fleet economics ---------------------------------------------------
	measureFleet(&b, sc, *quick)

	// --- observability ----------------------------------------------------
	measureObs(&b, sc)

	// --- streaming telemetry ----------------------------------------------
	measureTelemetry(&b, sc)

	// Measured 2026-08-05 on the same host (1 vCPU) at commit 6f7b7e9,
	// immediately before the overhaul.
	b.PreOptimization = map[string]any{
		"event_throughput_ns_per_op": 620.9,
		"ping_pong_ns_per_op":        1540.0,
		"paper_fig7_all_wall_s":      12.1,
		"paper_lu_comparison_wall_s": 8.82,
	}

	writeBaseline(*out, &b)
	fmt.Printf("wrote %s (paper comparison %.2fs wall, %.2f Mev/s)\n",
		*out, b.PaperComparison.WallS, b.PaperComparison.MevPerS)
}

func writeBaseline(path string, b *Baseline) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
