// Command paperbench regenerates every table and figure of the paper's
// evaluation section:
//
//	fig4     process migration overhead, decomposed into four phases
//	fig5     application execution time with/without one migration
//	fig6     migration scalability vs processes per node (LU)
//	fig7     job migration vs Checkpoint/Restart (ext3, PVFS), with speedups
//	table1   amount of data movement (MB)
//	pool     ablation: buffer pool / chunk sizing (paper section IV-A, text)
//	restart  ablation: file-based vs memory-based restart (paper future work)
//	socket   ablation: RDMA pull vs socket staging (paper section III-B)
//	interval checkpoint-interval study: how proactive migration prolongs the
//	         interval between job-wide checkpoints (paper section VI)
//	sweep    cluster-scale sweep: LU migration at 64..2048 ranks (paper PPN),
//	         with per-point event counts and simulator throughput
//	crossover head-to-head strategy campaigns (proactive migration, reactive
//	         CR, replication, adaptive) under identical failure schedules,
//	         swept over failure density — the Cappello-style migration-vs-CR
//	         crossover, plus a correlated rack-failure point
//	fleet    fleet control-plane economics: 1,000 nodes, 200 jobs, 30 simulated
//	         days per policy arm (FIFO/backfill × fixed/autoscaled spare pool),
//	         with goodput, node-hours-lost, MTTI/MTTR and queue-wait rollups
//	partitioned  opt-in (not part of -exp all): conservative time-windowed
//	         partitioned execution of the top sweep point, serial baseline vs
//	         -partitions shards at each -workers count, with speedups
//
// Usage:
//
//	paperbench [-exp all|fig4|fig5|fig6|fig7|table1|pool|restart|socket|sweep]
//	           [-scale paper|quick] [-seed N] [-parallel N]
//	paperbench -exp partitioned [-partitions N] [-workers 1,2,4,8]
//
// At -scale paper the configuration matches the testbed: NPB class C, 64
// processes on 8 compute nodes plus one spare (Fig. 5 runs each application
// to completion and takes the longest).
//
// -parallel N fans the independent simulations inside each figure across up
// to N OS threads (0 = GOMAXPROCS). Every simulated number is bit-identical
// to -parallel 1; only the wall-clock lines change.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"ibmig/internal/core"
	"ibmig/internal/exp"
	"ibmig/internal/fleet"
	"ibmig/internal/metrics"
	"ibmig/internal/npb"
	"ibmig/internal/obs"
)

func main() {
	which := flag.String("exp", "all", "experiment to run: all, fig4, fig5, fig6, fig7, table1, pool, restart, socket, aggregate, interference, interval, fleet, sweep, timeline, crossover, partitioned")
	scaleName := flag.String("scale", "paper", "experiment scale: paper (class C, 64 ranks) or quick (class W, 16 ranks)")
	seed := flag.Int64("seed", 1, "simulation seed")
	par := flag.Int("parallel", 1, "concurrent simulation engines per figure (0 = GOMAXPROCS)")
	traceOut := flag.String("trace-out", "", "timeline experiment: write the Chrome/Perfetto trace-event JSON here")
	partitions := flag.Int("partitions", 8, "partitioned experiment: shard count (must divide the LU grid rows)")
	workersFlag := flag.String("workers", "1,2,4,8", "partitioned experiment: comma-separated worker-goroutine counts")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	exp.SetParallelism(*par)

	sc := exp.PaperScale
	if *scaleName == "quick" {
		sc = exp.QuickScale
	} else if *scaleName != "paper" {
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	sc.Seed = *seed

	run := func(name string, fn func()) {
		if *which != "all" && *which != name {
			return
		}
		start := time.Now()
		fn()
		fmt.Printf("[%s completed in %.1fs wall]\n\n", name, time.Since(start).Seconds())
	}

	fmt.Printf("Scale: class %c, %d ranks, %d per node, seed %d, parallelism %d\n\n",
		sc.Class, sc.Ranks, sc.PPN, sc.Seed, exp.Parallelism())

	dpStart := metrics.CaptureDataPlane()

	var fig7Groups []exp.Fig7Group
	run("fig4", func() {
		fmt.Println(exp.FormatPhaseRows("Fig. 4 — Process Migration Overhead", exp.Fig4(sc)))
	})
	run("fig5", func() {
		fmt.Println(exp.FormatFig5(exp.Fig5(sc)))
	})
	run("fig6", func() {
		fmt.Println(exp.FormatPhaseRows(
			fmt.Sprintf("Fig. 6 — Scalability of Job Migration (LU.%c, %d nodes)", sc.Class, sc.Ranks/sc.PPN),
			exp.Fig6(sc)))
	})
	run("fig7", func() {
		fig7Groups = exp.Fig7(sc)
		fmt.Println(exp.FormatFig7(fig7Groups))
	})
	run("table1", func() {
		if fig7Groups == nil {
			fig7Groups = exp.Fig7(sc)
		}
		fmt.Println(exp.FormatTable1(exp.Table1(fig7Groups)))
	})
	run("pool", func() {
		fmt.Println(exp.FormatPool(exp.AblationPool(sc)))
	})
	run("restart", func() {
		fmt.Println(exp.FormatPhaseRows("Ablation — file-based vs memory-based restart", exp.AblationRestartMode(sc)))
	})
	run("socket", func() {
		fmt.Println(exp.FormatPhaseRows("Ablation — RDMA pull vs socket staging (LU)", exp.AblationTransport(sc)))
	})
	run("aggregate", func() {
		fmt.Println(exp.FormatAggregation(exp.AblationAggregation(sc)))
	})
	run("interference", func() {
		fmt.Println(exp.FormatInterference(exp.AblationInterference(sc)))
	})
	run("interval", func() {
		mig, _, pvfs, _ := exp.RunComparison(npb.LU, sc, core.Options{})
		fmt.Println(exp.FormatInterval(exp.IntervalStudy(mig, pvfs)))
	})
	run("timeline", func() {
		// Not part of the paper's figures: an observed migration whose span
		// timeline, latency histograms and device utilization decompose where
		// the time of Fig. 4 actually goes. -trace-out saves the Perfetto file.
		_, col := exp.RunMigrationObserved(npb.LU, sc, core.Options{}, false)
		fmt.Printf("Timeline — observed LU.%c migration (load -trace-out in ui.perfetto.dev)\n", sc.Class)
		if err := obs.WriteSummary(os.Stdout, col); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		if h := col.Histogram("ib.rdma_read_us"); h.Count() > 0 {
			fmt.Printf("RDMA chunk latency: p50=%.1fµs p99=%.1fµs over %d chunks\n",
				h.Quantile(0.50), h.Quantile(0.99), h.Count())
		}
		var hot string
		var hotBusy float64
		for _, name := range col.TopTracks("ib.") {
			if b := col.Track(name).BusyFraction(); b > hotBusy {
				hot, hotBusy = name, b
			}
		}
		if hot != "" {
			fmt.Printf("hottest IB link: %s (busy %.1f%% of its active window)\n", hot, hotBusy*100)
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err == nil {
				err = obs.WriteChromeTrace(f, col)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "trace-out:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *traceOut)
		}
	})
	run("crossover", func() {
		spec := exp.CampaignSpec{Kernel: npb.LU, Scale: sc}
		fmt.Println("Crossover — strategy goodput vs failure density (LU, shared fault schedule)")
		fmt.Println(exp.FormatCrossover(exp.CrossoverSweep(spec, []int{1, 2, 3})))
		corr := spec
		corr.Failures = 1
		corr.Correlated = true
		fmt.Println(exp.FormatCrossover([]*exp.CampaignResult{exp.RunCampaign(corr)}))
	})
	run("fleet", func() {
		// Sized so total demand slightly exceeds capacity over the horizon: a
		// queue forms and the scheduling arms diverge (an underloaded fleet
		// makes backfill indistinguishable from FIFO).
		base := fleet.Config{
			Nodes:    1000,
			RackSize: 10,
			NodeMTBF: 4 * 24 * time.Hour,
			Horizon:  30 * 24 * time.Hour,
			Jobs:     200,
			MaxWidth: 64,
			MeanWork: 120 * time.Hour,
			Seed:     sc.Seed,
		}
		if *scaleName == "quick" {
			base.Nodes, base.RackSize = 128, 8
			base.Horizon = 7 * 24 * time.Hour
			base.Jobs, base.MaxWidth, base.MeanWork = 64, 24, 18*time.Hour
		}
		fmt.Printf("Fleet economics — %d nodes, %d jobs, %.0f-day horizon, per-policy rollups\n",
			base.Nodes, base.Jobs, base.Horizon.Hours()/24)
		fmt.Println(exp.FormatFleet(exp.RunFleetCampaign(exp.FleetCampaignSpec{Base: base})))
	})
	run("sweep", func() {
		ranks := exp.DefaultSweepRanks
		if *scaleName == "quick" {
			ranks = exp.QuickSweepRanks
		}
		title := fmt.Sprintf("Scale sweep — LU migration, class %c, %d ranks/node", sc.Class, sc.PPN)
		fmt.Println(exp.FormatSweep(title, exp.ScaleSweep(sc, ranks)))
	})
	// partitioned is opt-in (excluded from -exp all): its serial baseline
	// deliberately re-builds the full-mesh world the sweep already measures,
	// which at paper scale is a multi-minute run in its own right.
	if *which == "partitioned" {
		run("partitioned", func() {
			workers, err := parseWorkers(*workersFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, "-workers:", err)
				os.Exit(2)
			}
			ranks := exp.DefaultSweepRanks[len(exp.DefaultSweepRanks)-1]
			iters := 4
			if *scaleName == "quick" {
				ranks = exp.QuickSweepRanks[len(exp.QuickSweepRanks)-1]
				iters = 10
			}
			psc := exp.Scale{Class: sc.Class, Ranks: ranks, PPN: sc.PPN, Seed: sc.Seed}
			fmt.Printf("Partitioned engine — conservative time-windowed execution (LU.%c, %d ranks, %d shards)\n",
				sc.Class, ranks, *partitions)
			fmt.Println(exp.FormatPartitionedScaling(exp.PartitionedScaling(psc, *partitions, workers, iters)))
		})
	}

	fmt.Println(metrics.CaptureDataPlane().Delta(dpStart))
}

// parseWorkers parses the -workers comma list ("1,2,4,8") into worker counts.
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}
