// Command tracecheck validates a Chrome trace-event JSON file produced by
// migsim -trace-out (or any exporter): well-formed JSON, a traceEvents array,
// monotonic per-track timestamps, and balanced, properly nested B/E pairs.
// It exits non-zero with a diagnostic on the first violation — the CI gate
// that keeps exported timelines Perfetto-loadable.
//
// Usage: tracecheck FILE.json [FILE.json ...]
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"ibmig/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck FILE.json [FILE.json ...]")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed = true
			continue
		}
		if err := obs.ValidateChromeTrace(data); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed = true
			continue
		}
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		_ = json.Unmarshal(data, &doc)
		fmt.Printf("%s: ok (%d events)\n", path, len(doc.TraceEvents))
	}
	if failed {
		os.Exit(1)
	}
}
