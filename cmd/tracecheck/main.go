// Command tracecheck validates exported telemetry. By default it checks
// Chrome trace-event JSON files produced by migsim -trace-out (or any
// exporter): well-formed JSON, a traceEvents array, monotonic per-track
// timestamps, and balanced, properly nested B/E pairs. With -sse it instead
// validates captured Server-Sent-Events streams from obsserve /stream: every
// data line a known-kind JSON WireEvent with its required fields, timestamps
// nondecreasing. It exits non-zero with a diagnostic on the first violation —
// the CI gate that keeps exported timelines loadable and streams parseable.
//
// Usage: tracecheck [-sse] FILE [FILE ...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ibmig/internal/obs"
)

func main() {
	sse := flag.Bool("sse", false, "validate Server-Sent-Events captures (obsserve /stream) instead of Chrome traces")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-sse] FILE [FILE ...]")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed = true
			continue
		}
		if *sse {
			if err := obs.ValidateSSE(data); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
				failed = true
				continue
			}
			fmt.Printf("%s: ok (sse)\n", path)
			continue
		}
		if err := obs.ValidateChromeTrace(data); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed = true
			continue
		}
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		_ = json.Unmarshal(data, &doc)
		fmt.Printf("%s: ok (%d events)\n", path, len(doc.TraceEvents))
	}
	if failed {
		os.Exit(1)
	}
}
