// Command ftbmon demonstrates the Fault Tolerance Backplane: it deploys the
// agent tree over a simulated cluster, attaches IPMI-style health monitors
// and the failure predictor, scripts a deteriorating node, kills an interior
// agent to show the tree self-healing, and streams every backplane event.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ibmig/internal/cluster"
	"ibmig/internal/health"
	"ibmig/internal/obs"
	"ibmig/internal/sim"
)

func main() {
	nodes := flag.Int("nodes", 8, "compute nodes")
	killAgent := flag.String("kill", "node02", "agent to kill mid-run (empty to disable)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	e := sim.NewEngine(*seed)
	e.SetTracer(&sim.Writer{W: os.Stdout, Filter: func(kind string) bool {
		switch kind {
		case "ftb.publish", "ftb.heal", "health.predict":
			return true
		}
		return false
	}})
	c := cluster.New(e, cluster.Config{ComputeNodes: *nodes, SpareNodes: 1, PVFSServers: 0})
	col := obs.Enable(e)

	// Health monitors: node03's temperature ramps into the critical range;
	// everyone else stays healthy.
	for _, n := range c.Compute {
		sensors := []*health.Sensor{
			health.SteadySensor("cpu-temp", 85, 95, 62),
			health.SteadySensor("ecc-errors", 10, 100, 0),
		}
		if n.Name == "node03" {
			sensors[0] = health.RampSensor("cpu-temp", 85, 95, 62, sim.Time(2*time.Second), 8.0)
		}
		health.NewMonitor(e, c.FTB, n.Name, 500*time.Millisecond, sensors)
	}
	pred := health.NewPredictor(e, c.FTB, c.Login.Name, 3)

	// A subscriber on the login node prints predictions as they arrive.
	sub := c.FTB.Connect(c.Login.Name, "ftbmon").Subscribe("", "")
	e.Spawn("printer", func(p *sim.Proc) {
		for {
			ev, ok := sub.Recv(p)
			if !ok {
				return
			}
			fmt.Printf("%10.3fs  event %-28s from %-18s payload=%v\n",
				p.Now().Seconds(), ev.Namespace+"/"+ev.Name, ev.SrcClient+"@"+ev.SrcNode, ev.Payload)
		}
	})

	e.Spawn("scenario", func(p *sim.Proc) {
		if *killAgent != "" {
			p.Sleep(3 * time.Second)
			fmt.Printf("%10.3fs  killing FTB agent on %s (children must re-attach)\n", p.Now().Seconds(), *killAgent)
			c.FTB.KillAgent(*killAgent)
		}
		p.Sleep(12 * time.Second)
		e.Stop()
	})

	if err := e.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "simulation failed:", err)
		os.Exit(1)
	}
	e.Shutdown()

	if node, ok := pred.Predictions.TryRecv(); ok {
		fmt.Printf("\npredictor flagged %s — a migration framework would now evacuate it\n", node)
	} else {
		fmt.Println("\nno failure predicted in this run")
	}
	fmt.Printf("backplane: %d events published, %d deliveries\n", c.FTB.Published, c.FTB.Delivered)

	// Publish→deliver latency across the agent tree: same-node deliveries sit
	// at the client-hop floor; remote subscribers add GigE tree propagation.
	col.Finish(e.Now())
	if h := col.Histogram("ftb.delivery_us"); h.Count() > 0 {
		fmt.Printf("\nFTB publish->deliver latency (%d deliveries):\n", h.Count())
		fmt.Printf("  p50=%.1fµs p90=%.1fµs p99=%.1fµs max=%.1fµs mean=%.1fµs\n",
			h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max(), h.Mean())
		var cum int64
		for i, n := range h.Counts {
			if n == 0 {
				continue
			}
			cum += n
			label := fmt.Sprintf("> %8.0fµs", h.Bounds[len(h.Bounds)-1])
			if i < len(h.Bounds) {
				label = fmt.Sprintf("<=%8.0fµs", h.Bounds[i])
			}
			fmt.Printf("  %s  %-40s %d\n", label, bar(n, h.N, 40), n)
			if cum == h.N {
				break
			}
		}
	}
}

// bar renders n/total as a proportional block bar of the given width.
func bar(n, total int64, width int) string {
	w := int(float64(n) / float64(total) * float64(width))
	if w < 1 {
		w = 1
	}
	out := make([]byte, w)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
