// Quickstart: launch a small MPI job under the migration framework, trigger
// one migration by hand, and print the four-phase report.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"ibmig/internal/cluster"
	"ibmig/internal/core"
	"ibmig/internal/npb"
	"ibmig/internal/sim"
)

func main() {
	// A deterministic simulated cluster: 4 compute nodes, 1 hot spare.
	engine := sim.NewEngine(42)
	c := cluster.New(engine, cluster.Config{ComputeNodes: 4, SpareNodes: 1})

	// The workload: NPB-like LU, class S, 8 ranks (2 per node).
	workload := npb.New(npb.LU, npb.ClassS, 8)
	result := npb.NewResult(workload.Ranks)

	// Launch under the migration framework with end-to-end image
	// verification enabled.
	fw := core.Launch(c, workload, 2, result, core.Options{Hash: true})

	engine.Spawn("driver", func(p *sim.Proc) {
		fw.W.WaitReady(p)
		fmt.Printf("%s running on %v + spare %v\n", workload.Name(), c.ComputeNames(), c.SpareNames())

		// Let the job reach steady state, then evacuate node03.
		p.Sleep(30 * time.Millisecond)
		fmt.Printf("t=%.3fs: requesting migration of node03\n", p.Now().Seconds())
		fw.TriggerMigration(p, "node03").Wait(p)

		rep := fw.Reports[0]
		fmt.Println(rep)

		fw.W.WaitDone(p)
		fmt.Printf("application finished at t=%.3fs; ranks now on node03: %d, on spare01: %d\n",
			p.Now().Seconds(), len(fw.W.RanksOn("node03")), len(fw.W.RanksOn("spare01")))
		engine.Stop()
	})

	if err := engine.Run(); err != nil {
		log.Fatal(err)
	}
	engine.Shutdown()

	// The run is application-transparent: every rank completed every
	// iteration despite the migration.
	for rank, iters := range result.IterDone {
		if iters != workload.Iterations {
			log.Fatalf("rank %d finished only %d/%d iterations", rank, iters, workload.Iterations)
		}
	}
	fmt.Println("all ranks completed all iterations — migration was transparent")
}
