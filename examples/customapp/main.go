// Custom application: the framework is not tied to the NPB kernels — any
// function driving the mpi.Rank API can run under migration protection. This
// example implements a small 1-D heat-diffusion stencil with halo exchange
// and a convergence all-reduce, gives each rank a custom address-space
// layout, and survives a mid-run migration.
//
// Run with:
//
//	go run ./examples/customapp
package main

import (
	"fmt"
	"log"
	"time"

	"ibmig/internal/cluster"
	"ibmig/internal/core"
	"ibmig/internal/mpi"
	"ibmig/internal/proc"
	"ibmig/internal/sim"
)

const (
	ranks      = 12
	iterations = 80
	haloBytes  = 32 << 10 // one halo face
)

func main() {
	engine := sim.NewEngine(5)
	c := cluster.New(engine, cluster.Config{ComputeNodes: 6, SpareNodes: 1})

	// Each rank owns a 24 MB slab of grid plus a small runtime footprint.
	segs := func(rank int) []proc.SegmentSpec {
		return []proc.SegmentSpec{
			{Name: "text", VAddr: 0x400000, Size: 1 << 20, Seed: 99},
			{Name: "heap", VAddr: 0x20000000, Size: 24 << 20, Seed: uint64(rank)},
			{Name: "stack", VAddr: 0x7ff0000000, Size: 1 << 20, Seed: uint64(rank) << 8},
		}
	}

	iterDone := make([]int, ranks)
	app := func(r *mpi.Rank) {
		left, right := r.ID()-1, r.ID()+1
		for it := 0; it < iterations; it++ {
			r.Compute(2 * time.Millisecond) // stencil update
			// Halo exchange with both neighbours (edges have one).
			if right < r.Size() {
				r.Sendrecv(right, it*2, haloBytes, right, it*2+1)
			}
			if left >= 0 {
				r.Sendrecv(left, it*2+1, haloBytes, left, it*2)
			}
			r.TouchMemory(uint64(it))
			if it%10 == 9 {
				r.Allreduce(8) // global residual check
			}
			iterDone[r.ID()]++
		}
		r.Barrier()
	}

	fw := core.LaunchApp(c, "heat1d", c.Placement(ranks, 2), segs, app, core.Options{
		Hash:        true,
		RestartMode: core.RestartPipelined, // fastest available variant
	})

	engine.Spawn("driver", func(p *sim.Proc) {
		fw.W.WaitReady(p)
		p.Sleep(40 * time.Millisecond)
		fmt.Println("migrating node04 away mid-solve...")
		fw.TriggerMigration(p, "node04").Wait(p)
		fmt.Println(fw.Reports[0])
		fw.W.WaitDone(p)
		engine.Stop()
	})
	if err := engine.Run(); err != nil {
		log.Fatal(err)
	}
	engine.Shutdown()

	for rank, n := range iterDone {
		if n != iterations {
			log.Fatalf("rank %d finished %d/%d iterations", rank, n, iterations)
		}
	}
	fmt.Printf("heat1d: %d ranks x %d iterations completed despite the migration\n", ranks, iterations)
}
