// Maintenance drain: an operator uses the user-initiated migration trigger
// (the paper: "a migration can also be triggered by user request or a job
// scheduler ... i.e., a system-maintenance task") to vacate two nodes one
// after another — e.g. to swap DIMMs — while the job keeps running.
//
// Run with:
//
//	go run ./examples/maintenance
package main

import (
	"fmt"
	"log"
	"sort"

	"ibmig/internal/cluster"
	"ibmig/internal/core"
	"ibmig/internal/npb"
	"ibmig/internal/sim"
)

func main() {
	engine := sim.NewEngine(11)
	c := cluster.New(engine, cluster.Config{ComputeNodes: 8, SpareNodes: 2})

	workload := npb.New(npb.SP, npb.ClassW, 16)
	result := npb.NewResult(workload.Ranks)
	fw := core.Launch(c, workload, 2, result, core.Options{Hash: true})

	printPlacement := func(when string) {
		byNode := map[string]int{}
		for _, r := range fw.W.Ranks() {
			byNode[r.Node()]++
		}
		var nodes []string
		for n := range byNode {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		fmt.Printf("%s:", when)
		for _, n := range nodes {
			fmt.Printf("  %s=%d", n, byNode[n])
		}
		fmt.Println()
	}

	engine.Spawn("operator", func(p *sim.Proc) {
		fw.W.WaitReady(p)
		printPlacement("initial placement")

		p.Sleep(sim.Duration(workload.EstimatedRuntime() / 5))
		fmt.Println("\noperator: draining node02 for DIMM swap")
		fw.TriggerMigration(p, "node02").Wait(p)
		fmt.Println(fw.Reports[0])
		printPlacement("after first drain")

		p.Sleep(sim.Duration(workload.EstimatedRuntime() / 5))
		fmt.Println("\noperator: draining node07 next")
		fw.TriggerMigration(p, "node07").Wait(p)
		fmt.Println(fw.Reports[1])
		printPlacement("after second drain")

		fw.W.WaitDone(p)
		engine.Stop()
	})
	if err := engine.Run(); err != nil {
		log.Fatal(err)
	}
	engine.Shutdown()

	fmt.Println()
	for _, node := range []string{"node02", "node07", "spare01", "spare02"} {
		fmt.Printf("NLA %s: %v\n", node, fw.NLA(node).State())
	}
	for rank, iters := range result.IterDone {
		if iters != workload.Iterations {
			log.Fatalf("rank %d lost work", rank)
		}
	}
	fmt.Println("both nodes drained; job never stopped; no work lost")
}
