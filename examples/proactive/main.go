// Proactive fault tolerance: IPMI-style health monitors watch every node, a
// failure predictor turns a deteriorating temperature ramp into an FTB
// prediction, and the migration framework evacuates the node before it dies
// — the paper's motivating scenario.
//
// Run with:
//
//	go run ./examples/proactive
package main

import (
	"fmt"
	"log"
	"time"

	"ibmig/internal/cluster"
	"ibmig/internal/core"
	"ibmig/internal/health"
	"ibmig/internal/npb"
	"ibmig/internal/sim"
)

func main() {
	engine := sim.NewEngine(7)
	c := cluster.New(engine, cluster.Config{ComputeNodes: 8, SpareNodes: 1})

	workload := npb.New(npb.BT, npb.ClassW, 16) // BT wants a square rank count
	result := npb.NewResult(workload.Ranks)
	fw := core.Launch(c, workload, 2, result, core.Options{Hash: true})

	// Health monitors on every compute node; node05's CPU temperature starts
	// ramping 2 simulated seconds in.
	for _, n := range c.Compute {
		temp := health.SteadySensor("cpu-temp", 85, 95, 60)
		if n.Name == "node05" {
			temp = health.RampSensor("cpu-temp", 85, 95, 60, sim.Time(2*time.Second), 10)
		}
		health.NewMonitor(engine, c.FTB, n.Name, 250*time.Millisecond, []*health.Sensor{temp})
	}
	predictor := health.NewPredictor(engine, c.FTB, c.Login.Name, 3)

	// Wire predictions straight into the migration framework.
	fw.AttachPredictor(predictor.Predictions)

	engine.Spawn("driver", func(p *sim.Proc) {
		fw.W.WaitReady(p)
		fmt.Printf("%s on 8 nodes; node05 will overheat at t=2s\n", workload.Name())
		fw.W.WaitDone(p)
		engine.Stop()
	})

	if err := engine.Run(); err != nil {
		log.Fatal(err)
	}
	engine.Shutdown()

	if len(fw.Reports) == 0 {
		log.Fatal("no proactive migration happened")
	}
	fmt.Println(fw.Reports[0])
	fmt.Printf("node05 NLA state: %v (evacuated before the predicted failure)\n", fw.NLA("node05").State())
	fmt.Printf("spare01 NLA state: %v\n", fw.NLA("spare01").State())
	for rank, iters := range result.IterDone {
		if iters != workload.Iterations {
			log.Fatalf("rank %d lost work: %d/%d iterations", rank, iters, workload.Iterations)
		}
	}
	fmt.Println("job finished with zero lost work")
}
