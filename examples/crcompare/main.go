// CR comparison: against one live job, run (a) a proactive migration, (b) a
// full Checkpoint/Restart cycle to node-local ext3, and (c) a full cycle to
// PVFS — the three stacks of the paper's Fig. 7 — and print the
// phase-decomposed comparison and the Table I data volumes.
//
// Run with:
//
//	go run ./examples/crcompare
package main

import (
	"fmt"
	"log"

	"ibmig/internal/cluster"
	"ibmig/internal/core"
	"ibmig/internal/cr"
	"ibmig/internal/metrics"
	"ibmig/internal/npb"
	"ibmig/internal/sim"
)

func main() {
	engine := sim.NewEngine(3)
	c := cluster.New(engine, cluster.Config{ComputeNodes: 8, SpareNodes: 1, PVFSServers: 4})

	workload := npb.New(npb.LU, npb.ClassW, 16)
	result := npb.NewResult(workload.Ranks)
	fw := core.Launch(c, workload, 2, result, core.Options{Hash: true})

	var migration, crExt3, crPVFS *metrics.Report
	engine.Spawn("driver", func(p *sim.Proc) {
		fw.W.WaitReady(p)
		p.Sleep(sim.Duration(workload.EstimatedRuntime() / 4))

		fw.TriggerMigration(p, "node04").Wait(p)
		migration = fw.Reports[0]

		crExt3 = cr.NewRunner(c, fw.W, cr.Ext3, true).FullCycle(p)
		crPVFS = cr.NewRunner(c, fw.W, cr.PVFS, true).FullCycle(p)

		fw.W.WaitDone(p)
		engine.Stop()
	})
	if err := engine.Run(); err != nil {
		log.Fatal(err)
	}
	engine.Shutdown()

	row := func(label string, r *metrics.Report) []string {
		return []string{
			label,
			metrics.Seconds(r.Phase(metrics.PhaseStall)),
			metrics.Seconds(r.Phase(metrics.PhaseMigrate) + r.Phase(metrics.PhaseCkpt)),
			metrics.Seconds(r.Phase(metrics.PhaseRestart)),
			metrics.Seconds(r.Phase(metrics.PhaseResume)),
			metrics.Seconds(r.Total()),
			metrics.MB(r.BytesMoved),
		}
	}
	fmt.Printf("Handling one node failure for %s:\n\n", workload.Name())
	fmt.Println(metrics.Table(
		[]string{"strategy", "stall(s)", "ckpt/mig(s)", "restart(s)", "resume(s)", "total(s)", "moved(MB)"},
		[][]string{row("Job Migration", migration), row("CR(ext3)", crExt3), row("CR(PVFS)", crPVFS)},
	))
	fmt.Printf("\nmigration speedup: %.2fx vs CR(ext3), %.2fx vs CR(PVFS)\n",
		crExt3.Total().Seconds()/migration.Total().Seconds(),
		crPVFS.Total().Seconds()/migration.Total().Seconds())
	fmt.Printf("data moved: migration %s MB vs CR %s MB (%.1fx less)\n",
		metrics.MB(migration.BytesMoved), metrics.MB(crPVFS.BytesMoved),
		float64(crPVFS.BytesMoved)/float64(migration.BytesMoved))
}
