// Package ibmig is a full reproduction of "RDMA-Based Job Migration
// Framework for MPI over InfiniBand" (Ouyang, Marcarelli, Rajachandrasekar,
// Panda — IEEE CLUSTER 2010) as a deterministic discrete-event simulation.
//
// The public entry points live in the executables (cmd/migsim,
// cmd/paperbench, cmd/ftbmon) and the examples; the library packages under
// internal/ are organized bottom-up:
//
//	sim      discrete-event kernel          payload  symbolic byte-accurate data
//	ib       InfiniBand verbs fabric        gige     GigE + IPoIB socket networks
//	ftb      Fault Tolerance Backplane      vfs      disks, ext3-like FS, PVFS
//	proc     process address spaces         blcr     checkpoint/restart library
//	mpi      mini-MPI runtime + CR protocol npb      LU/BT/SP workloads
//	core     the Job Migration Framework    cr       Checkpoint/Restart baseline
//	cluster  testbed composition            health   IPMI sensors + predictor
//	exp      experiment harness             metrics  phase reports and tables
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; see EXPERIMENTS.md for paper-vs-measured numbers.
package ibmig
